//! Model-checked verification of the epoch reclamation backend
//! (`--cfg loom` only): pinned readers traverse with plain loads while a
//! deleter unlinks, retires, and drives grace-period collection.
//!
//! Under `--cfg loom` the epoch knobs collapse (1 pin slot, collect hint
//! every retire), so two readers share one slot — exercising the
//! nested/colliding pin merge that must keep the *older* epoch — and
//! every release-to-zero immediately tempts the collector.
//!
//! The safety property (invariant I12, docs/PROTOCOL.md): a node retired
//! at observed epoch `e` is freed only once
//! `e + 2 <= min(global_epoch, every pinned epoch)`. On every explored
//! schedule, a reader that obtained a pointer under a pin must observe
//! the cell intact (`TAG_CELL`) for the pin's whole lifetime — if the
//! collector freed it early, the deleter's re-allocation retypes the
//! cell (`TAG_RETYPED`) and the reader's assertion fires.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p valois-mem --test loom_epoch`
#![cfg(loom)]

use std::ptr;
use std::sync::Arc;

use valois_mem::{Arena, ArenaConfig, Epoch, Link, Managed, NodeHeader, ReclaimedLinks};
use valois_sync::shim::atomic::{AtomicUsize, Ordering};
use valois_sync::shim::{thread, Builder};

const TAG_FREE: usize = 0;
const TAG_CELL: usize = 1;
const TAG_RETYPED: usize = 2;

/// Minimal managed node: one drainable link (doubling as the free-list
/// link) and an observable `tag` reset by the collector's drain.
#[derive(Default)]
struct Slot {
    header: NodeHeader,
    link: Link<Slot>,
    tag: AtomicUsize,
}

impl Managed for Slot {
    fn header(&self) -> &NodeHeader {
        &self.header
    }
    fn free_link(&self) -> &Link<Self> {
        &self.link
    }
    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        links.push(self.link.swap(ptr::null_mut()));
        self.tag.store(TAG_FREE, Ordering::Release);
        links
    }
    fn reset_for_alloc(&self) {
        self.link.write(ptr::null_mut());
    }
}

struct Ctx {
    arena: Arena<Slot, Epoch>,
    root: Link<Slot>,
}

/// A 2-cell epoch arena with one cell published through `root` (the
/// root's link holds the cell's one link count).
fn published_ctx() -> Arc<Ctx> {
    let ctx = Arc::new(Ctx {
        arena: Arena::with_config(ArenaConfig::new().initial_capacity(2).max_nodes(2)),
        root: Link::null(),
    });
    let x = ctx.arena.alloc().expect("capacity 2");
    unsafe {
        (*x).tag.store(TAG_CELL, Ordering::Release);
        ctx.arena.store_link(&ctx.root, x);
        ctx.arena.release(x);
    }
    ctx
}

/// One pinned read of the published cell: while the pin is held, the
/// cell must stay intact no matter what the deleter/collector do.
fn reader(ctx: &Ctx) {
    let _pin = ctx.arena.pin();
    // SAFETY: `root` is a counted link of this arena; the read is under
    // the pin just taken.
    let p = unsafe { ctx.arena.safe_read(&ctx.root) };
    if !p.is_null() {
        // SAFETY: protected by the pin until `_pin` drops (I12).
        unsafe {
            assert_eq!(
                (*p).tag.load(Ordering::Acquire),
                TAG_CELL,
                "cell freed while a pin could reach it"
            );
            // A second look after more scheduling points: the grace
            // period must hold for the pin's entire window, not just
            // the instant of the read.
            assert_eq!(
                (*p).tag.load(Ordering::Acquire),
                TAG_CELL,
                "cell recycled mid-pin"
            );
            ctx.arena.unprotect(p);
        }
    }
}

/// Unlinks the cell (retiring it at link-count zero), drives collection,
/// and re-allocates — retyping whatever cell comes back.
fn deleter(ctx: &Ctx) {
    unsafe {
        {
            let _pin = ctx.arena.pin();
            let x = ctx.arena.safe_read(&ctx.root);
            if !x.is_null() {
                assert!(
                    ctx.arena.swing(&ctx.root, x, ptr::null_mut()),
                    "only writer of the root"
                );
                ctx.arena.unprotect(x);
            }
        }
        // Grace-period driving: each call is at most one advance plus one
        // limbo sweep; with readers still pinned at older epochs the
        // sweep must keep the cell.
        ctx.arena.advance_and_collect();
        ctx.arena.advance_and_collect();
        // Re-allocation: may legally return the spare cell at any time,
        // and the retired cell only after its grace period has elapsed.
        if let Ok(q) = ctx.arena.alloc() {
            (*q).tag.store(TAG_RETYPED, Ordering::Release);
            ctx.arena.release(q);
        }
    }
}

/// Quiesces the arena (no pins left) and checks conservation: exactly
/// two distinct cells, both drained and allocatable.
fn check_conservation(ctx: &Ctx) {
    for _ in 0..8 {
        ctx.arena.advance_and_collect();
    }
    ctx.arena.flush_thread_caches();
    let a = ctx.arena.alloc().expect("first cell conserved");
    let b = ctx.arena.alloc().expect("second cell conserved");
    assert_ne!(a, b, "free structure duplicated a cell");
    assert!(
        ctx.arena.alloc().is_err(),
        "free structure grew a phantom cell"
    );
    unsafe {
        assert_eq!((*a).tag.load(Ordering::Acquire), TAG_FREE);
        assert_eq!((*b).tag.load(Ordering::Acquire), TAG_FREE);
        ctx.arena.release(a);
        ctx.arena.release(b);
    }
    for _ in 0..8 {
        ctx.arena.advance_and_collect();
    }
    assert_eq!(ctx.arena.live_nodes(), 0);
}

/// Two pinned readers traverse while the deleter retires and drains.
#[test]
fn pinned_readers_survive_retire_and_drain() {
    let explored = Builder::new().preemption_bound(2).check(|| {
        let ctx = published_ctx();
        let threads: Vec<_> = [true, true, false]
            .into_iter()
            .map(|is_reader| {
                let ctx = Arc::clone(&ctx);
                thread::spawn(move || {
                    if is_reader {
                        reader(&ctx);
                    } else {
                        deleter(&ctx);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        check_conservation(&ctx);
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}

/// The same model under seeded random-walk schedules: preemption points
/// land deep inside the collector's take-limbo / horizon-scan / requeue
/// window, which the bounded DFS reaches late. The seed is fixed so a
/// regression (e.g. scanning the horizon *before* detaching the limbo
/// chain, or a one-epoch grace period) reproduces deterministically.
#[test]
fn pinned_readers_survive_retire_and_drain_seeded() {
    let explored = Builder::new()
        .preemption_bound(3)
        .random_walks(400, 0xE90C_5EED)
        .check(|| {
            let ctx = published_ctx();
            let threads: Vec<_> = [true, true, false]
                .into_iter()
                .map(|is_reader| {
                    let ctx = Arc::clone(&ctx);
                    thread::spawn(move || {
                        if is_reader {
                            reader(&ctx);
                        } else {
                            deleter(&ctx);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            check_conservation(&ctx);
        });
    assert!(explored > 1, "model must branch, explored {explored}");
}

/// The grace period is two epochs, not one (I12's lag). Deterministic
/// single-schedule regression: a node retired at epoch `e` must survive
/// the collection that runs at `global == e + 1` — a one-epoch rule
/// (`retire + 1 <= horizon`) would free it there, reopening the race
/// this lag exists to close (a reader pinning at `e + 1` concurrently
/// with the collector's scan, holding a stale link with no ordering
/// forcing it to see the unlink).
#[test]
fn grace_period_is_two_epochs_not_one() {
    let explored = Builder::new().check(|| {
        let ctx = published_ctx();
        unsafe {
            let x = {
                let _pin = ctx.arena.pin();
                let x = ctx.arena.safe_read(&ctx.root);
                ctx.arena.unprotect(x);
                x
            };
            // Unlink: the link count hits zero and `x` is retired at the
            // current epoch `e`. Under loom the collect hint fires on
            // every retirement, so this release runs one collect round
            // itself: with no pins outstanding it advances the global
            // epoch to `e + 1` — exactly where a one-epoch rule
            // (`retire + 1 <= horizon`) would free `x`.
            assert!(ctx.arena.swing(&ctx.root, x, ptr::null_mut()));
            assert_eq!(
                (*x).tag.load(Ordering::Acquire),
                TAG_CELL,
                "freed one epoch after retirement (one-epoch grace period)"
            );
            // The next advance reaches `e + 2`: the grace period has
            // elapsed with no pins outstanding — must free now.
            assert_eq!(ctx.arena.advance_and_collect(), 1, "grace period over");
            assert_eq!((*x).tag.load(Ordering::Acquire), TAG_FREE);
        }
        check_conservation(&ctx);
    });
    assert_eq!(explored, 1, "deterministic model, explored {explored}");
}
