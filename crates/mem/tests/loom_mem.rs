//! Model-checked verification of the batching layers added on top of the
//! §5 protocol (`--cfg loom` only): per-thread free-node magazines and
//! deferred release buffers.
//!
//! Under `--cfg loom` the knobs collapse (1 magazine slot, capacity 1,
//! refill batch 1, defer capacity 2), so a handful of operations reaches
//! every batch-boundary path — magazine refill, over-capacity flush to the
//! global list, slot-contention fallback, and deferred-drain — while the
//! scheduler in `valois_sync::shim::sched` exhaustively explores the
//! interleavings.
//!
//! The model races a deferred release (the batched decrement arriving
//! *late*, at drain time) against a concurrent release-to-zero and
//! re-allocation. The §5 safety argument says deferral only delays
//! reclamation; here that is checked on every explored schedule: a cell is
//! never recycled while the parked reference exists, the claim arbitration
//! never double-fires, and afterwards every cell is back on a free
//! structure with exact counts.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p valois-mem --test loom_mem`
#![cfg(loom)]

use std::ptr;
use std::sync::Arc;

use valois_mem::{Arena, ArenaConfig, DeferredReleases, Link, Managed, NodeHeader, ReclaimedLinks};
use valois_sync::shim::atomic::{AtomicUsize, Ordering};
use valois_sync::shim::{thread, Builder};

const TAG_FREE: usize = 0;
const TAG_CELL: usize = 1;
const TAG_RETYPED: usize = 2;

/// Minimal managed node: one drainable link (doubling as the free-list /
/// magazine link) and an observable `tag` reset by reclamation.
#[derive(Default)]
struct Slot {
    header: NodeHeader,
    link: Link<Slot>,
    tag: AtomicUsize,
}

impl Managed for Slot {
    fn header(&self) -> &NodeHeader {
        &self.header
    }
    fn free_link(&self) -> &Link<Self> {
        &self.link
    }
    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        links.push(self.link.swap(ptr::null_mut()));
        self.tag.store(TAG_FREE, Ordering::Release);
        links
    }
    fn reset_for_alloc(&self) {
        self.link.write(ptr::null_mut());
    }
}

struct Ctx {
    arena: Arena<Slot>,
    root: Link<Slot>,
}

fn capped_arena(cap: usize) -> Arena<Slot> {
    let arena = Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
    // Trigger nothing lazily later: the initial segment exists and the
    // current thread's magazine has seen traffic, so the threads below
    // contend on the steady-state paths.
    let warm = arena.alloc().expect("warm-up alloc within cap");
    unsafe { arena.release(warm) };
    arena
}

/// Magazine flush + deferred drain vs. release-to-zero.
///
/// Thread A parks its counted reference on the published cell in a
/// [`DeferredReleases`] buffer, churns an alloc/release cycle through the
/// (single, capacity-1) magazine slot — forcing refill and over-capacity
/// flush interleavings with B — and only then drains the parked release.
/// Thread B concurrently unlinks the cell from the root and releases the
/// root's count, so the *last* decrement (and the claim arbitration that
/// guards reclamation) may come from either thread, possibly while the
/// other is mid-magazine-operation.
///
/// On every explored schedule:
/// * while A's reference is parked (deferred, not yet drained), the cell
///   is never recycled under it — B's re-allocation attempt can only
///   return the *other* cell;
/// * exactly one claim winner reclaims the cell (no double reclaim, no
///   lost cell);
/// * after both threads finish and the magazines are flushed, both cells
///   are allocatable, distinct, and reset.
#[test]
fn deferred_drain_and_magazine_flush_race_release_to_zero() {
    let explored = Builder::new().check(|| {
        let ctx = Arc::new(Ctx {
            arena: capped_arena(2),
            root: Link::null(),
        });
        // Publish one live cell through the root.
        let x = ctx.arena.alloc().expect("capacity 2");
        unsafe {
            (*x).tag.store(TAG_CELL, Ordering::Release);
            ctx.arena.store_link(&ctx.root, x);
            ctx.arena.release(x);
        }

        let parker = {
            let ctx = Arc::clone(&ctx);
            thread::spawn(move || unsafe {
                let mut defer = DeferredReleases::new();
                let p = ctx.arena.safe_read(&ctx.root);
                if !p.is_null() {
                    // Park the counted reference: the release is deferred,
                    // so the cell must stay protected until the drain.
                    ctx.arena.release_deferred(&mut defer, p);
                    assert_eq!(
                        (*p).tag.load(Ordering::Acquire),
                        TAG_CELL,
                        "cell died under a parked (deferred) reference"
                    );
                }
                // Magazine churn while the reference is parked: alloc pops
                // through the slot (refill from the global list), release
                // pushes back and — capacity 1 under loom — flushes to the
                // global list, interleaving slot try-locks with B.
                if let Ok(q) = ctx.arena.alloc() {
                    if !p.is_null() {
                        assert_ne!(q, p, "recycled a cell whose release is only parked");
                    }
                    ctx.arena.release(q);
                }
                if !p.is_null() {
                    assert_eq!(
                        (*p).tag.load(Ordering::Acquire),
                        TAG_CELL,
                        "cell recycled before the deferred drain"
                    );
                }
                // The batched decrement finally lands — this may be the
                // release-to-zero that wins the claim and reclaims.
                ctx.arena.drain_deferred(&mut defer);
            })
        };

        let deleter = {
            let ctx = Arc::clone(&ctx);
            thread::spawn(move || unsafe {
                // Unlink the cell and drop the root's count — the other
                // candidate for the final decrement.
                let x = ctx.arena.safe_read(&ctx.root);
                if !x.is_null() {
                    assert!(
                        ctx.arena.swing(&ctx.root, x, ptr::null_mut()),
                        "only writer of the root"
                    );
                    ctx.arena.release(x);
                }
                // Re-allocation attempt: legal only once no counted
                // reference (parked or live) remains on the cell it gets.
                if let Ok(q) = ctx.arena.alloc() {
                    (*q).tag.store(TAG_RETYPED, Ordering::Release);
                    ctx.arena.release(q);
                }
            })
        };

        parker.join().unwrap();
        deleter.join().unwrap();

        // Conservation: flush the magazines and check that exactly the two
        // cells exist, distinct, reset, and allocatable.
        ctx.arena.flush_thread_caches();
        let a = ctx.arena.alloc().expect("first cell conserved");
        let b = ctx.arena.alloc().expect("second cell conserved");
        assert_ne!(a, b, "free structure duplicated a cell");
        assert!(
            ctx.arena.alloc().is_err(),
            "free structure grew a phantom cell"
        );
        unsafe {
            assert_eq!((*a).tag.load(Ordering::Acquire), TAG_FREE);
            assert_eq!((*b).tag.load(Ordering::Acquire), TAG_FREE);
            ctx.arena.release(a);
            ctx.arena.release(b);
        }
        assert_eq!(ctx.arena.live_nodes(), 0);
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}
