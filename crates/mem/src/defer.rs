//! Deferred release batching: coalescing `Release` decrements.
//!
//! The cursor hop loop releases two or three counted references per
//! visited item; each is a shared `Fetch&Add(refct, -1)` the moment the
//! hop happens. A [`DeferredReleases`] buffer postpones those decrements:
//! the owner parks the counted reference in a bounded thread-private
//! buffer and the arena drains the whole batch later
//! (`Arena::drain_deferred`), sharing one statistics flush and keeping the
//! drained headers cache-hot.
//!
//! # Why deferral is safe
//!
//! A parked pointer *is* a counted reference — the buffer simply holds it
//! a little longer. Deferring a decrement can therefore only keep a
//! node's count **higher** for longer: reclamation (count → 0, claim,
//! reuse) is delayed, never anticipated, so the §5 safety argument — a
//! node is recycled only when no counted reference exists — is untouched.
//! The corrected `RefClaim` arbitration from PR 1 is likewise unaffected:
//! drains perform ordinary `Release` calls (Fig. 16), one per parked
//! reference.
//!
//! The one observable cost is *liveness of reclamation*: nodes whose last
//! reference sits in an undrained buffer are not yet back on the free
//! list, so a capped pool can transiently look emptier than it is. The
//! structure layer drains on cursor drop and retries a failed allocation
//! after draining, restoring the paper's pool-exhaustion semantics.

use std::fmt;

use crate::managed::Managed;

/// Buffered decrements before a drain is forced.
#[cfg(not(loom))]
pub(crate) const DEFER_CAP: usize = 32;
/// Tiny buffer under the model checker so a couple of operations reach
/// the drain path.
#[cfg(loom)]
pub(crate) const DEFER_CAP: usize = 2;

/// A bounded thread-private buffer of counted references awaiting
/// release.
///
/// Create one per long-lived traversal handle (the list cursor embeds
/// one), park references with `Arena::release_deferred`, and drain with
/// `Arena::drain_deferred` — at the latest when the handle is dropped.
/// The buffer itself performs no synchronization; all shared-memory work
/// happens at drain time.
pub struct DeferredReleases<N: Managed> {
    pub(crate) buf: [*mut N; DEFER_CAP],
    pub(crate) len: usize,
}

impl<N: Managed> DeferredReleases<N> {
    /// Maximum parked references before `release_deferred` drains.
    pub const CAPACITY: usize = DEFER_CAP;

    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            buf: [std::ptr::null_mut(); DEFER_CAP],
            len: 0,
        }
    }

    /// Parked references awaiting release.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no releases are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<N: Managed> Default for DeferredReleases<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Managed> Drop for DeferredReleases<N> {
    fn drop(&mut self) {
        // Dropping pending references leaks their counts (the nodes stay
        // type-stable arena memory, so this is a leak, not UB). Owners
        // must drain through the arena first; the cursor does so in its
        // own Drop.
        debug_assert!(
            self.len == 0,
            "DeferredReleases dropped with {} undrained references",
            self.len
        );
    }
}

impl<N: Managed> fmt::Debug for DeferredReleases<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeferredReleases")
            .field("len", &self.len)
            .field("capacity", &Self::CAPACITY)
            .finish()
    }
}
