//! Pluggable reclamation backends: the [`Reclaimer`] marker trait.
//!
//! The paper's §5 SafeRead/Release scheme pays two shared RMWs per pointer
//! hop (increment on acquire, decrement on release) — E8 shows that is the
//! dominant cost on the traversal hot path. Träff & Pöter (PAPERS.md,
//! arXiv:2010.15755) report order-of-magnitude practical wins from trading
//! the paper's per-reference exactness for coarser-grained protection. This
//! module makes that trade *selectable at the type level*:
//!
//! * [`RefCount`] — the paper-faithful default. Process references and link
//!   references are both counted; every protection window is an
//!   incr/release pair (Figs. 15–18).
//! * [`Epoch`] — a quiescent-state backend. **Link references stay
//!   counted** (structural CASes still transfer counts via
//!   [`Arena::swing`](crate::Arena::swing), so "count == link in-degree"
//!   remains an exact invariant and the retire point is still the paper's
//!   decrement-to-zero + claim arbitration), but **process references
//!   become free**: a thread pins the global epoch once per *operation*
//!   ([`Arena::pin`](crate::Arena::pin)) and then traverses with plain
//!   pointer loads — zero shared RMWs per hop. A node whose link in-degree
//!   hits zero is *retired* into a limbo list instead of being freed; its
//!   links are drained and the node recycled only after every thread has
//!   pinned an epoch newer than its retirement epoch (the grace period —
//!   invariant I12, PROTOCOL.md).
//!
//! The backend is a generic parameter on [`Arena`](crate::Arena) (and, one
//! level up, on `valois-core`'s `List`/`Cursor`), defaulting to
//! [`RefCount`], so every existing user compiles unchanged. The free list,
//! magazines, and deferred-release buffers are *inside* the trait boundary
//! and stay refcount-based under both backends: SafeRead's count on the
//! free head is what makes the free-list pop ABA-safe, and that path is
//! off the per-hop fast path by design (magazines amortize it).

use std::fmt;

mod sealed {
    pub trait Sealed {}
}

/// Marker trait selecting an [`Arena`](crate::Arena) reclamation backend.
///
/// Implemented only by [`RefCount`] and [`Epoch`] (the trait is sealed:
/// backend behavior lives inside the arena, keyed off
/// [`Reclaimer::COUNTED_READS`], so a foreign impl could not change it).
pub trait Reclaimer: sealed::Sealed + Default + fmt::Debug + Copy + Send + Sync + 'static {
    /// Whether *process references* (SafeRead results, cursor positions)
    /// are reference-counted. `true` for the paper's scheme; `false` for
    /// the epoch backend, where traversal reads are plain loads protected
    /// by the caller's epoch pin. Link references are counted under both.
    const COUNTED_READS: bool;

    /// Stable backend name for stats/bench labels.
    const NAME: &'static str;
}

/// The paper-faithful §5 backend: every reference — process and link — is
/// counted; reclamation happens at the exact moment the last reference
/// dies. The default backend.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RefCount;

impl sealed::Sealed for RefCount {}

impl Reclaimer for RefCount {
    const COUNTED_READS: bool = true;
    const NAME: &'static str = "refcount";
}

/// The epoch/quiescent-state backend: link references counted, process
/// references protected by per-operation epoch pins; unlinked nodes pass
/// through a grace-period limbo list before recycling. See
/// [`crate::epoch`] and PROTOCOL.md invariant I12.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Epoch;

impl sealed::Sealed for Epoch {}

impl Reclaimer for Epoch {
    const COUNTED_READS: bool = false;
    const NAME: &'static str = "epoch";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_constants() {
        // black_box keeps clippy's assertions-on-constants quiet: the
        // point is pinning the backend contract, not computing anything.
        assert!(std::hint::black_box(RefCount::COUNTED_READS));
        assert!(!std::hint::black_box(Epoch::COUNTED_READS));
        assert_eq!(RefCount::NAME, "refcount");
        assert_eq!(Epoch::NAME, "epoch");
    }
}
