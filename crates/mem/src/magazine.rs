//! Per-thread free-node magazines: the alloc/reclaim fast path.
//!
//! Experiment E8 showed `Arena::alloc` and the reclamation `push_free`
//! hammering the single global `free_head` word: every allocation is a
//! `SafeRead` + CAS on it, every reclamation a CAS, and every thread pays
//! the cache-line transfer. A *magazine* is a small per-thread stack of
//! free nodes threaded through their `free_link` fields — exactly the
//! free-list representation — that absorbs most alloc/free traffic with
//! plain (uncontended) loads and stores, refilling from and flushing to
//! the global Treiber list in batches.
//!
//! # Invariants (same as the global free list)
//!
//! Every node parked in a magazine is in the ordinary free-list state:
//!
//! * reference count exactly 1 — the incoming free-structure pointer
//!   (the magazine head for the top node, the predecessor's `free_link`
//!   for the rest),
//! * `claim` set (cleared only by `Alloc` at hand-out),
//! * chained through [`Managed::free_link`].
//!
//! Moving nodes between a magazine and the global list is therefore pure
//! *count transfer* — no reference count is touched — and every
//! whole-arena invariant check (`for_each_node` audits, refcount audits)
//! holds without knowing which free structure a node is parked in.
//!
//! # Locking and lock-freedom
//!
//! A magazine slot is guarded by an `AtomicBool` **try**-lock: a thread
//! whose slot is busy (another thread hashed to it) immediately falls back
//! to the global lock-free path instead of waiting, so `Alloc`/`Reclaim`
//! remain non-blocking — the lock is an opportunistic fast path, never a
//! progress requirement. Slots are selected by
//! [`valois_sync::sharded::thread_index`]; under `--cfg loom` there is a
//! single slot (and tiny capacities) so the model checker explores
//! magazine interleavings deterministically.

use valois_sync::shim::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::managed::{Link, Managed};

/// Number of magazine slots (power of two, masked by thread index).
#[cfg(not(loom))]
pub(crate) const MAG_SLOTS: usize = 16;
/// One slot under the model checker: every thread shares it, so the
/// try-lock contention path is explored deterministically.
#[cfg(loom)]
pub(crate) const MAG_SLOTS: usize = 1;

/// Nodes a magazine may hold before `push_free` flushes the excess back
/// to the global list (it flushes down to half, keeping a working set).
#[cfg(not(loom))]
pub(crate) const MAGAZINE_CAP: usize = 64;
/// Tiny capacity under the model checker so a handful of operations
/// reaches the flush path.
#[cfg(loom)]
pub(crate) const MAGAZINE_CAP: usize = 1;

/// Nodes `Alloc` pops from the global list into an empty magazine in one
/// refill (the first goes to the caller).
#[cfg(not(loom))]
pub(crate) const REFILL_BATCH: usize = 32;
/// Minimal refill under the model checker.
#[cfg(loom)]
pub(crate) const REFILL_BATCH: usize = 1;

/// One per-thread magazine: a bounded stack of free nodes chained through
/// their `free_link`s, guarded by a try-lock.
///
/// The head is a counted link (it holds the top node's single free-state
/// count); `len` is plain bookkeeping written only under the lock.
pub(crate) struct MagazineSlot<N: Managed> {
    lock: AtomicBool,
    head: Link<N>,
    len: AtomicUsize,
}

impl<N: Managed> Default for MagazineSlot<N> {
    fn default() -> Self {
        Self {
            lock: AtomicBool::new(false),
            head: Link::null(),
            len: AtomicUsize::new(0),
        }
    }
}

impl<N: Managed> MagazineSlot<N> {
    /// Attempts to acquire the slot. Never waits: contention means the
    /// caller takes the global path instead.
    pub(crate) fn try_lock(&self) -> Option<MagazineGuard<'_, N>> {
        if self
            .lock
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(MagazineGuard { slot: self })
        } else {
            None
        }
    }
}

impl<N: Managed> std::fmt::Debug for MagazineSlot<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MagazineSlot")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

/// Exclusive access to one magazine slot; unlocks on drop.
pub(crate) struct MagazineGuard<'a, N: Managed> {
    slot: &'a MagazineSlot<N>,
}

impl<N: Managed> Drop for MagazineGuard<'_, N> {
    fn drop(&mut self) {
        self.slot.lock.store(false, Ordering::Release);
    }
}

impl<N: Managed> MagazineGuard<'_, N> {
    /// Nodes currently parked in this magazine.
    pub(crate) fn len(&self) -> usize {
        self.slot.len.load(Ordering::Relaxed)
    }

    /// Pops the top node, transferring its free-state count (held by the
    /// magazine head link) to the caller. The popped node's `free_link`
    /// still names its old successor but no longer counts it — callers
    /// must treat it as garbage (`reset_for_alloc` nulls it without
    /// releasing, exactly as after a global-list pop).
    pub(crate) fn pop(&mut self) -> Option<*mut N> {
        let p = self.slot.head.read();
        if p.is_null() {
            return None;
        }
        // SAFETY: the magazine holds the top node's only count, and we hold
        // the slot lock, so `p` is ours exclusively.
        let next = unsafe { (*p).free_link().read() };
        // Count transfer: `p.free_link`'s count on `next` moves to the
        // magazine head; the head's count on `p` moves to the caller.
        self.slot.head.write(next);
        let len = self.slot.len.load(Ordering::Relaxed);
        self.slot.len.store(len - 1, Ordering::Relaxed);
        Some(p)
    }

    /// Pushes a node carrying one free-state count (the caller's — e.g.
    /// just installed by `Reclaim`'s increment, or popped from the global
    /// list). The count transfers to the magazine head link; the old
    /// head's count transfers to `p.free_link`.
    pub(crate) fn push(&mut self, p: *mut N) {
        let old = self.slot.head.read();
        // SAFETY: the caller transfers its exclusive free-state count on
        // `p`; under the slot lock nobody else writes `p.free_link`.
        unsafe {
            (*p).free_link().write(old);
        }
        self.slot.head.write(p);
        let len = self.slot.len.load(Ordering::Relaxed);
        self.slot.len.store(len + 1, Ordering::Relaxed);
    }

    /// Detaches up to `want` nodes from the top as a ready-linked chain,
    /// returning `(head, tail, taken)`. The chain stays internally counted
    /// (each node's `free_link` counts its successor); the *tail's*
    /// `free_link` is stale — its old count moved back to the magazine
    /// head — and must be overwritten before the chain is published (the
    /// arena's global splice does exactly that).
    pub(crate) fn take_chain(&mut self, want: usize) -> Option<(*mut N, *mut N, usize)> {
        if want == 0 {
            return None;
        }
        let head = self.slot.head.read();
        if head.is_null() {
            return None;
        }
        let mut tail = head;
        let mut taken = 1;
        // SAFETY: all chain nodes are exclusively ours under the slot lock.
        unsafe {
            while taken < want {
                let next = (*tail).free_link().read();
                if next.is_null() {
                    break;
                }
                tail = next;
                taken += 1;
            }
            let rest = (*tail).free_link().read();
            // Count transfer: `tail.free_link`'s count on `rest` moves to
            // the magazine head; the head's count on `head` moves to the
            // detached chain's owner (the caller).
            self.slot.head.write(rest);
        }
        let len = self.slot.len.load(Ordering::Relaxed);
        self.slot.len.store(len - taken, Ordering::Relaxed);
        Some((head, tail, taken))
    }
}

impl<N: Managed> std::fmt::Debug for MagazineGuard<'_, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MagazineGuard")
            .field("len", &self.len())
            .finish()
    }
}
