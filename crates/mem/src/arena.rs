//! The type-stable node arena and the §5 protocol operations.
//!
//! One [`Arena`] backs one concurrent data structure (or one size class, in
//! the paper's terms — §5.2 notes "free cells must all be of the same
//! size"). The arena owns every node for the structure's lifetime:
//! segments are allocated as the free list runs dry and are only freed when
//! the arena is dropped. This *type stability* is what makes the protocol's
//! transient touches of recycled nodes memory-safe (see crate docs).
//!
//! | Paper figure | Method |
//! |---|---|
//! | Fig. 15 `SafeRead`  | [`Arena::safe_read`] |
//! | Fig. 16 `Release`   | [`Arena::release`] |
//! | Fig. 17 `Alloc`     | [`Arena::alloc`] |
//! | Fig. 18 `Reclaim`   | internal `push_free` (invoked by the claim winner inside `release`) |

use std::error::Error;
use std::fmt;
use valois_sync::shim::sync::Mutex;

use valois_sync::pad::CachePadded;

use crate::managed::{Link, Managed};
use crate::stats::{MemStats, StatCounters};

/// Configuration for an [`Arena`].
///
/// The paper assumes a preallocated pool of cells; [`ArenaConfig::max_nodes`]
/// recovers that model (alloc fails when the pool is exhausted), while the
/// default allows growth by doubling, which is an engineering convenience
/// outside the paper's model (growth takes a mutex, but only on the cold
/// path; `Alloc` itself stays lock-free whenever the free list is non-empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Nodes allocated up front. Default 1024.
    pub initial_capacity: usize,
    /// Hard cap on total nodes; `None` (default) grows without bound.
    pub max_nodes: Option<usize>,
}

impl ArenaConfig {
    /// Default configuration (1024 preallocated nodes, unbounded growth).
    pub fn new() -> Self {
        Self {
            initial_capacity: 1024,
            max_nodes: None,
        }
    }

    /// Sets the initial capacity.
    pub fn initial_capacity(mut self, nodes: usize) -> Self {
        self.initial_capacity = nodes.max(1);
        self
    }

    /// Sets a hard pool limit (the paper's fixed-pool model).
    pub fn max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(nodes.max(1));
        self
    }
}

impl Default for ArenaConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Allocation failure: the pool hit [`ArenaConfig::max_nodes`] with no free
/// cells available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError;

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("node pool exhausted")
    }
}

impl Error for AllocError {}

/// A type-stable segmented pool of `N` nodes with the §5 reference-counting
/// protocol.
///
/// See the crate-level documentation for the counting invariant. All
/// pointer-returning methods hand out *counted* references; every such
/// pointer must eventually be passed to exactly one [`Arena::release`].
pub struct Arena<N: Managed> {
    /// Segment storage. Boxed slices never move, so node addresses are
    /// stable; the mutex is taken only to grow or enumerate.
    segments: Mutex<Vec<Box<[N]>>>,
    /// Head of the lock-free free list (a counted root: its current value
    /// contributes 1 to that node's count).
    free_head: CachePadded<Link<N>>,
    /// Grow serialization (kept out of `segments` so enumeration does not
    /// block growth decisions).
    grow_lock: Mutex<()>,
    counters: StatCounters,
    total_nodes: valois_sync::shim::atomic::AtomicUsize,
    max_nodes: Option<usize>,
}

impl<N: Managed + Default> Arena<N> {
    /// Creates an arena with `config`, preallocating the initial segment.
    pub fn with_config(config: ArenaConfig) -> Self {
        let arena = Self {
            segments: Mutex::new(Vec::new()),
            free_head: CachePadded::new(Link::null()),
            grow_lock: Mutex::new(()),
            counters: StatCounters::default(),
            total_nodes: valois_sync::shim::atomic::AtomicUsize::new(0),
            max_nodes: config.max_nodes,
        };
        let initial = match config.max_nodes {
            Some(max) => config.initial_capacity.min(max),
            None => config.initial_capacity,
        };
        arena.add_segment(initial.max(1));
        arena
    }

    /// Creates an arena with the default configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Allocates one segment of `count` default-constructed nodes and pushes
    /// them all onto the free list.
    fn add_segment(&self, count: usize) {
        let segment: Box<[N]> = (0..count).map(|_| N::default()).collect();
        for node in segment.iter() {
            // Fresh nodes are born detached (count 0, claim set); the push
            // installs the free list's incoming-pointer count.
            self.push_free(node as *const N as *mut N);
        }
        self.total_nodes
            .fetch_add(count, valois_sync::shim::atomic::Ordering::Relaxed);
        self.segments.lock().unwrap().push(segment);
        StatCounters::bump(&self.counters.grows);
    }

    /// Grows the pool if permitted. Returns `false` when at `max_nodes`.
    fn try_grow(&self) -> bool {
        let _g = self.grow_lock.lock().unwrap();
        // Re-check after acquiring: another thread may have grown (or
        // released nodes) while we waited.
        if !self.free_head.read().is_null() {
            return true;
        }
        let current = self
            .total_nodes
            .load(valois_sync::shim::atomic::Ordering::Relaxed);
        let want = current.max(1); // double
        let want = match self.max_nodes {
            Some(max) if current >= max => return false,
            Some(max) => want.min(max - current),
            None => want,
        };
        self.add_segment(want);
        true
    }

    /// The paper's `Alloc` (Fig. 17): pops a free cell, re-initializes it,
    /// and returns it with one counted reference (the caller's).
    ///
    /// Lock-free whenever the free list is non-empty; an empty free list
    /// triggers a (mutex-guarded) growth attempt unless the pool is capped.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the pool is exhausted and capped.
    pub fn alloc(&self) -> Result<*mut N, AllocError> {
        loop {
            // Fig. 17 line 1: q <- SafeRead(Freelist). The free-list head is
            // a counted root, so SafeRead's contract holds.
            let q = unsafe { self.safe_read(&self.free_head) };
            if q.is_null() {
                if self.try_grow() {
                    continue;
                }
                return Err(AllocError);
            }
            // Our counted reference keeps `q` from being recycled, so its
            // free link is stable while `q` remains the head.
            let next = unsafe { (*q).free_link().read() };
            // Fig. 17 line 4: CSW(Freelist, q, q^.next).
            if self.free_head.compare_and_swap(q, next) {
                // Count transfer: the root's count on `q` dies (released
                // below — we keep our SafeRead count as the allocation
                // reference); the root now counts `next`, which
                // simultaneously lost the count held by `q`'s free link
                // (net zero for `next`).
                unsafe { self.release(q) };
                StatCounters::bump(&self.counters.allocs);
                unsafe {
                    debug_assert!((*q).header().claim_is_set(), "free node must be claimed");
                    (*q).reset_for_alloc();
                    // Fig. 17 line 8: Write(q^.claim, 0) — the single point
                    // where claim is cleared, while we are sole owner.
                    (*q).header().clear_claim();
                }
                return Ok(q);
            }
            // Fig. 17 lines 5-6: lost the race; drop protection and retry.
            unsafe { self.release(q) };
            StatCounters::bump(&self.counters.alloc_retries);
        }
    }
}

impl<N: Managed + Default> Default for Arena<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Managed> Arena<N> {
    /// The paper's `SafeRead` (Fig. 15): atomically reads the counted link
    /// `src` and acquires a counted reference on the target.
    ///
    /// Returns null if the link is null. A non-null result must eventually
    /// be passed to exactly one [`Arena::release`].
    ///
    /// # Safety
    ///
    /// `src` must be a *counted link of this arena*: a location whose
    /// non-null values are always addresses of this arena's nodes and whose
    /// current value always contributes 1 to its target's count (a structure
    /// root, or a field of a node the caller holds a counted reference on).
    pub unsafe fn safe_read(&self, src: &Link<N>) -> *mut N {
        loop {
            // Fig. 15 line 1: q <- Read(p).
            let q = src.read();
            if q.is_null() {
                return std::ptr::null_mut();
            }
            // Fig. 15 line 4: Increment(q^.refct). `q` may be stale — even
            // recycled — but it is always a valid node of this type-stable
            // arena, so the increment is memory-safe; the re-read below
            // rejects stale protections and `release` undoes the count.
            (*q).header().incr_ref();
            // Fig. 15 line 5: still current? Then our count was acquired
            // while `src` held a (counted) pointer to `q`, so `q` was live.
            if src.read() == q {
                StatCounters::bump(&self.counters.safe_reads);
                return q;
            }
            // Fig. 15 lines 7-8.
            self.release(q);
            StatCounters::bump(&self.counters.safe_read_retries);
        }
    }

    /// Duplicates a counted reference the caller already holds (used when a
    /// held pointer is copied into a second long-lived location, e.g. a
    /// cursor field or a fresh node's link).
    ///
    /// # Safety
    ///
    /// The caller must hold a counted reference on non-null `p` (so it
    /// cannot be concurrently recycled).
    pub unsafe fn incr_ref(&self, p: *mut N) {
        if !p.is_null() {
            (*p).header().incr_ref();
        }
    }

    /// The paper's `Release` (Fig. 16): gives up one counted reference.
    /// If the count reaches zero, wins the `claim` arbitration and reclaims
    /// the node — draining its outgoing counted links (whose targets are
    /// released in turn, iteratively) and pushing it onto the free list.
    ///
    /// Null pointers are ignored (the paper's algorithms release cursor
    /// fields that may be NULL, e.g. `First` line 3 / `Update` line 5).
    ///
    /// # Safety
    ///
    /// Non-null `p` must be a counted reference obtained from this arena
    /// (`safe_read`/`incr_ref`/`alloc` or a drained link), released exactly
    /// once.
    pub unsafe fn release(&self, p: *mut N) {
        if p.is_null() {
            return;
        }
        // The common case releases one node and touches nothing else; the
        // worklist is only needed when a reclamation cascades through the
        // dying node's outgoing links (e.g. a chain of deleted cells).
        let mut worklist: Vec<*mut N> = Vec::new();
        let mut current = p;
        loop {
            StatCounters::bump(&self.counters.releases);
            // Fig. 16 line 1: c <- Fetch&Add(p^.refct, -1).
            let prev = (*current).header().decr_ref();
            if prev == 1 {
                // Count hit zero: Fig. 16 lines 4-7 — claim arbitration,
                // with the Michael & Scott correction: the claim CAS
                // requires the count to *still* be zero, so a claim
                // attempt delayed past a recycling of this node fails
                // instead of freeing the new allocation (see
                // `NodeHeader::try_claim` and `RefClaim`).
                if (*current).header().try_claim() {
                    // We are the unique reclaimer. No process or link
                    // references remain, so reading/draining fields is
                    // exclusive.
                    let links = (*current).drain_links();
                    for target in links.iter() {
                        worklist.push(target);
                    }
                    StatCounters::bump(&self.counters.reclaims);
                    self.push_free(current);
                }
            }
            match worklist.pop() {
                Some(next) => current = next,
                None => return,
            }
        }
    }

    /// The paper's `Reclaim` (Fig. 18): pushes a claimed, drained node onto
    /// the free list (Treiber-stack push).
    fn push_free(&self, p: *mut N) {
        // The free list's incoming pointer is a counted reference: *add* 1
        // (never store — a store would erase a concurrent transient
        // SafeRead increment; see crate docs "corrections").
        unsafe {
            (*p).header().incr_ref();
        }
        loop {
            // Fig. 18 lines 1-3. Plain read (not SafeRead): we never
            // dereference the old head, so a stale value only costs a CAS
            // retry, and head-recycling ABA is harmless because re-linking
            // the *current* head is exactly what push wants.
            let head = self.free_head.read();
            unsafe {
                (*p).free_link().write(head);
            }
            if self.free_head.compare_and_swap(head, p) {
                // Count transfer: root's count on `head` moves to
                // `p.free_link`; root now counts `p` (the increment above).
                break;
            }
        }
    }

    /// Counted-link CAS swing with automatic count transfer.
    ///
    /// Increments `new`'s count (the prospective link), attempts
    /// `CAS(loc, old, new)`, and on success releases `old` (the count the
    /// link held); on failure the increment is undone. Returns the CAS
    /// outcome, which is the paper's "cursor became invalid" retry signal.
    ///
    /// # Safety
    ///
    /// `loc` must be a counted link of this arena; the caller must hold
    /// counted references on non-null `old` and `new` (this is what makes
    /// the CAS ABA-free: `old` cannot be recycled while protected).
    pub unsafe fn swing(&self, loc: &Link<N>, old: *mut N, new: *mut N) -> bool {
        StatCounters::bump(&self.counters.swings);
        self.incr_ref(new);
        if loc.compare_and_swap(old, new) {
            self.release(old);
            true
        } else {
            self.release(new);
            StatCounters::bump(&self.counters.swing_failures);
            false
        }
    }

    /// Initializing store into a link of an *unpublished* node (fresh from
    /// [`Arena::alloc`], not yet reachable by other processes): installs
    /// `new` with a count, releasing whatever the link previously counted
    /// (non-null only when a retry loop re-targets a prepared node, e.g.
    /// `TryInsert` rewriting `a^.next` after an invalid cursor).
    ///
    /// # Safety
    ///
    /// The node owning `loc` must be unpublished (exclusively owned);
    /// the caller must hold a counted reference on non-null `new`.
    pub unsafe fn store_link(&self, loc: &Link<N>, new: *mut N) {
        self.incr_ref(new);
        let old = loc.swap(new);
        self.release(old);
    }

    /// Returns a *detached* node to the free list: count zero and `claim`
    /// already won by the caller. This is the hook for owners' quiescent
    /// cycle collection (back-link cycles among simultaneously deleted
    /// cells are unreachable garbage that plain counting cannot free; see
    /// DESIGN.md §1 note 3).
    ///
    /// # Safety
    ///
    /// The caller must have exclusive ownership of `p` (won its claim, all
    /// counted links drained, count zero) and guarantee no concurrent
    /// protocol activity can reach `p`.
    pub unsafe fn reclaim_detached(&self, p: *mut N) {
        debug_assert_eq!((*p).header().refcount(), 0);
        debug_assert!((*p).header().claim_is_set());
        StatCounters::bump(&self.counters.reclaims);
        self.push_free(p);
    }

    /// Snapshot of the protocol counters.
    pub fn stats(&self) -> MemStats {
        self.counters.snapshot()
    }

    /// Total nodes owned by the arena (free + live).
    pub fn capacity(&self) -> usize {
        self.total_nodes
            .load(valois_sync::shim::atomic::Ordering::Relaxed)
    }

    /// Nodes currently allocated (checked out and not yet reclaimed).
    pub fn live_nodes(&self) -> u64 {
        self.stats().live_nodes()
    }

    /// Visits the address of every node the arena owns (free or live).
    ///
    /// Safe in itself — the callback receives raw addresses and headers may
    /// be inspected through atomics at any time — but dereferencing payload
    /// fields requires the caller to guarantee quiescence (e.g. the
    /// structure's `&mut self` drop/collect paths).
    pub fn for_each_node(&self, mut f: impl FnMut(*mut N)) {
        let segments = self.segments.lock().unwrap();
        for segment in segments.iter() {
            for node in segment.iter() {
                f(node as *const N as *mut N);
            }
        }
    }
}

impl<N: Managed> fmt::Debug for Arena<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.capacity())
            .field("live_nodes", &self.live_nodes())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managed::{NodeHeader, ReclaimedLinks};
    use std::sync::Arc;
    use valois_sync::shim::atomic::{AtomicU64, Ordering};

    /// Minimal managed node: one value slot and two counted links, mirroring
    /// the list's cell shape.
    #[derive(Default)]
    struct TestNode {
        header: NodeHeader,
        next: Link<TestNode>,
        back: Link<TestNode>,
        value: AtomicU64,
    }

    impl Managed for TestNode {
        fn header(&self) -> &NodeHeader {
            &self.header
        }

        fn free_link(&self) -> &Link<Self> {
            &self.next
        }

        fn drain_links(&self) -> ReclaimedLinks<Self> {
            let mut links = ReclaimedLinks::new();
            links.push(self.next.swap(std::ptr::null_mut()));
            links.push(self.back.swap(std::ptr::null_mut()));
            links
        }

        fn reset_for_alloc(&self) {
            // next held the free-list link whose count was transferred to
            // the free-list head at pop: null it without releasing.
            self.next.write(std::ptr::null_mut());
            self.back.write(std::ptr::null_mut());
            self.value.store(0, Ordering::Relaxed);
        }
    }

    fn small_arena(cap: usize) -> Arena<TestNode> {
        Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap))
    }

    #[test]
    fn alloc_returns_reset_node_with_one_reference() {
        let arena = small_arena(4);
        let p = arena.alloc().unwrap();
        unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!(!(*p).header().claim_is_set());
            assert!((*p).next.read().is_null());
        }
        unsafe { arena.release(p) };
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn release_reclaims_and_node_is_reusable() {
        let arena = small_arena(1);
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        let q = arena.alloc().unwrap();
        assert_eq!(p, q, "single-node pool must recycle the same node");
        unsafe { arena.release(q) };
    }

    #[test]
    fn exhaustion_reports_alloc_error() {
        let arena = small_arena(2);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        assert_eq!(arena.alloc(), Err(AllocError));
        unsafe {
            arena.release(a);
            arena.release(b);
        }
        assert!(arena.alloc().is_ok(), "released node must be allocatable");
    }

    #[test]
    fn uncapped_arena_grows_by_doubling() {
        let arena: Arena<TestNode> = Arena::with_config(ArenaConfig::new().initial_capacity(2));
        let mut held = Vec::new();
        for _ in 0..10 {
            held.push(arena.alloc().unwrap());
        }
        assert!(arena.capacity() >= 10);
        assert!(arena.stats().grows >= 2);
        for p in held {
            unsafe { arena.release(p) };
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn drained_links_release_targets_transitively() {
        let arena = small_arena(8);
        // Build a -> b -> c via counted links, then drop all process refs:
        // releasing `a` must cascade and reclaim all three.
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        unsafe {
            (*b).next.write(c); // b's link now counts c: transfer our process ref
            (*a).next.write(b); // a's link now counts b
                                // (we transferred our alloc references into the links, so no
                                // incr_ref: each node's count is exactly 1, held by its parent.)
            assert_eq!((*c).header().refcount(), 1);
            arena.release(a);
        }
        assert_eq!(arena.live_nodes(), 0, "cascade must reclaim a, b, c");
        // All three must be allocatable again.
        let mut got = std::collections::HashSet::new();
        for _ in 0..3 {
            got.insert(arena.alloc().unwrap() as usize);
        }
        assert!(got.contains(&(a as usize)));
        assert!(got.contains(&(b as usize)));
        assert!(got.contains(&(c as usize)));
    }

    #[test]
    fn safe_read_protects_against_concurrent_unlink() {
        let arena = Arc::new(small_arena(64));
        // A root link that one thread repeatedly re-targets while others
        // safe_read through it; counts must stay exact.
        let root: Arc<Link<TestNode>> = Arc::new(Link::null());
        let init = arena.alloc().unwrap();
        unsafe { arena.store_link(&root, init) };
        unsafe { arena.release(init) };

        std::thread::scope(|s| {
            let writer = {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        let n = arena.alloc().unwrap();
                        unsafe {
                            (*n).value.store(i, Ordering::Relaxed);
                            // Publish: swing root from whatever it held.
                            loop {
                                let old = arena.safe_read(&root);
                                let ok = arena.swing(&root, old, n);
                                arena.release(old);
                                if ok {
                                    break;
                                }
                            }
                            arena.release(n);
                        }
                    }
                })
            };
            for _ in 0..3 {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        unsafe {
                            let p = arena.safe_read(&root);
                            if !p.is_null() {
                                // Reading the payload of a protected node
                                // must always be coherent.
                                let _ = (*p).value.load(Ordering::Relaxed);
                                arena.release(p);
                            }
                        }
                    }
                });
            }
            writer.join().unwrap();
        });

        // Quiesce: drop the root's node.
        unsafe {
            let last = arena.safe_read(&root);
            assert!(arena.swing(&root, last, std::ptr::null_mut()));
            arena.release(last);
        }
        assert_eq!(arena.live_nodes(), 0, "all nodes reclaimed after quiesce");
        // Every node's count must be exactly the free-list's 1.
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!((*p).header().claim_is_set());
        });
    }

    #[test]
    fn concurrent_alloc_release_conserves_nodes() {
        let arena = Arc::new(small_arena(256));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let arena = Arc::clone(&arena);
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..10_000usize {
                        if i % 3 == 2 {
                            if let Some(p) = held.pop() {
                                unsafe { arena.release(p) };
                            }
                        } else if let Ok(p) = arena.alloc() {
                            held.push(p);
                        }
                        if held.len() > 16 {
                            for p in held.drain(..) {
                                unsafe { arena.release(p) };
                            }
                        }
                    }
                    for p in held {
                        unsafe { arena.release(p) };
                    }
                });
            }
        });
        assert_eq!(arena.live_nodes(), 0);
        let mut free = 0usize;
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1, "free node count must be 1");
            free += 1;
        });
        assert_eq!(free, 256);
    }

    #[test]
    fn concurrent_growth_is_consistent() {
        // Many threads alloc-hold-release against a tiny initial segment:
        // growth must serialize correctly and never duplicate or lose
        // nodes.
        let arena: Arc<Arena<TestNode>> =
            Arc::new(Arena::with_config(ArenaConfig::new().initial_capacity(2)));
        let seen = std::sync::Mutex::new(std::collections::HashSet::<usize>::new());
        // Nobody releases until every thread holds its full batch, so the
        // distinctness check really is over simultaneously-live nodes.
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let arena = Arc::clone(&arena);
                let seen = &seen;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..200 {
                        let p = arena.alloc().expect("uncapped arena grows");
                        held.push(p);
                    }
                    {
                        let mut set = seen.lock().unwrap();
                        for &p in &held {
                            assert!(set.insert(p as usize), "duplicate live node");
                        }
                    }
                    barrier.wait();
                    for p in held {
                        unsafe { arena.release(p) };
                    }
                });
            }
        });
        assert_eq!(
            seen.lock().unwrap().len(),
            800,
            "every allocation distinct while simultaneously held"
        );
        assert!(arena.capacity() >= 800);
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn swing_failure_undoes_count() {
        let arena = small_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        let root: Link<TestNode> = Link::null();
        unsafe {
            arena.store_link(&root, a);
            // CAS expecting `b` must fail and leave counts unchanged.
            let before = (*c).header().refcount();
            assert!(!arena.swing(&root, b, c));
            assert_eq!((*c).header().refcount(), before);
            assert_eq!(root.read(), a);
            // Clean up: unlink a, release all.
            assert!(arena.swing(&root, a, std::ptr::null_mut()));
            arena.release(a);
            arena.release(b);
            arena.release(c);
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn stats_track_traffic() {
        let arena = small_arena(8);
        let base = arena.stats();
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        let d = arena.stats().since(&base);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.reclaims, 1);
        assert!(d.safe_reads >= 1, "alloc uses SafeRead on the free head");
        assert!(d.releases >= 2, "pop transfer + final release");
    }

    #[test]
    fn config_builders_clamp_to_minimums() {
        let c = ArenaConfig::new().initial_capacity(0).max_nodes(0);
        assert_eq!(c.initial_capacity, 1);
        assert_eq!(c.max_nodes, Some(1));
        assert_eq!(format!("{}", AllocError), "node pool exhausted");
    }

    #[test]
    fn for_each_node_visits_exactly_capacity() {
        let arena = small_arena(17);
        let mut count = 0;
        arena.for_each_node(|_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn store_link_replaces_and_releases_old() {
        let arena = small_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let fresh = arena.alloc().unwrap();
        unsafe {
            // fresh.next := a (counted), then re-target to b: a's count from
            // the link must drop. store_link itself installs the link count.
            arena.store_link(&(*fresh).next, a);
            assert_eq!((*a).header().refcount(), 2);
            arena.store_link(&(*fresh).next, b);
            assert_eq!((*a).header().refcount(), 1);
            assert_eq!((*b).header().refcount(), 2);
            arena.release(a);
            arena.release(b);
            arena.release(fresh); // drains fresh.next -> releases b
        }
        assert_eq!(arena.live_nodes(), 0);
    }
}
