//! The type-stable node arena and the §5 protocol operations.
//!
//! One [`Arena`] backs one concurrent data structure (or one size class, in
//! the paper's terms — §5.2 notes "free cells must all be of the same
//! size"). The arena owns every node for the structure's lifetime:
//! segments are allocated as the free list runs dry and are only freed when
//! the arena is dropped. This *type stability* is what makes the protocol's
//! transient touches of recycled nodes memory-safe (see crate docs).
//!
//! | Paper figure | Method |
//! |---|---|
//! | Fig. 15 `SafeRead`  | [`Arena::safe_read`] / [`Arena::safe_read_tallied`] |
//! | Fig. 16 `Release`   | [`Arena::release`] (batched: [`Arena::release_deferred`]) |
//! | Fig. 17 `Alloc`     | [`Arena::alloc`] |
//! | Fig. 18 `Reclaim`   | internal `push_free` (invoked by the claim winner inside `release`) |
//!
//! On top of the paper's global lock-free free list the arena layers
//! per-thread **magazines** (see [`crate::magazine`]): bounded node stacks
//! that absorb most `Alloc`/`Reclaim` traffic without touching the shared
//! `free_head` word, refilled and flushed in batches. The global list
//! remains the fallback on slot contention and the rendezvous for pool
//! pressure ([`Arena::flush_thread_caches`] / the internal scavenge), so
//! `AllocError` semantics for capped pools are preserved.

use std::error::Error;
use std::fmt;
use valois_sync::shim::sync::Mutex;

use valois_sync::pad::CachePadded;

use crate::defer::{DeferredReleases, DEFER_CAP};
use crate::epoch::{EpochDomain, COLLECT_EVERY};
use crate::magazine::{MagazineGuard, MagazineSlot, MAGAZINE_CAP, MAG_SLOTS, REFILL_BATCH};
use crate::managed::{Link, Managed};
use crate::reclaim::{Reclaimer, RefCount};
use crate::stats::{MemStats, MemTally, StatCounters};

/// Configuration for an [`Arena`].
///
/// The paper assumes a preallocated pool of cells; [`ArenaConfig::max_nodes`]
/// recovers that model (alloc fails when the pool is exhausted), while the
/// default allows growth by doubling, which is an engineering convenience
/// outside the paper's model (growth takes a mutex, but only on the cold
/// path; `Alloc` itself stays lock-free whenever the free list is non-empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Nodes allocated up front. Default 1024.
    pub initial_capacity: usize,
    /// Hard cap on total nodes; `None` (default) grows without bound.
    pub max_nodes: Option<usize>,
}

impl ArenaConfig {
    /// Default configuration (1024 preallocated nodes, unbounded growth).
    pub fn new() -> Self {
        Self {
            initial_capacity: 1024,
            max_nodes: None,
        }
    }

    /// Sets the initial capacity.
    pub fn initial_capacity(mut self, nodes: usize) -> Self {
        self.initial_capacity = nodes.max(1);
        self
    }

    /// Sets a hard pool limit (the paper's fixed-pool model).
    pub fn max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(nodes.max(1));
        self
    }
}

impl Default for ArenaConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Allocation failure: the pool hit [`ArenaConfig::max_nodes`] with no free
/// cells available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError;

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("node pool exhausted")
    }
}

impl Error for AllocError {}

/// A type-stable segmented pool of `N` nodes with the §5 reference-counting
/// protocol.
///
/// See the crate-level documentation for the counting invariant. All
/// pointer-returning methods hand out *counted* references; every such
/// pointer must eventually be passed to exactly one [`Arena::release`]
/// (possibly by way of [`Arena::release_deferred`]).
///
/// # Reclamation backends
///
/// The second type parameter selects the reclamation backend (see
/// [`crate::reclaim`]); it defaults to the paper-faithful
/// [`RefCount`] scheme, under which everything above holds verbatim.
/// Under [`crate::reclaim::Epoch`], *link* references (structure roots and
/// node link fields, maintained by [`Arena::swing`]/[`Arena::store_link`]/
/// [`Arena::incr_ref`]+[`Arena::release`]) remain counted, but *process*
/// references are protected by an epoch pin ([`Arena::pin`]) instead:
/// [`Arena::safe_read`] degenerates to a plain load, and the
/// process-reference half of the API goes through [`Arena::protect_dup`]/
/// [`Arena::unprotect`]/[`Arena::unprotect_deferred`], which are no-ops.
/// Nodes whose link in-degree reaches zero are retired into the arena's
/// [`EpochDomain`] limbo list and recycled only after their grace period
/// (invariant I12, PROTOCOL.md).
pub struct Arena<N: Managed, R: Reclaimer = RefCount> {
    /// Segment storage. Boxed slices never move, so node addresses are
    /// stable; the mutex is taken only to grow or enumerate.
    segments: Mutex<Vec<Box<[N]>>>,
    /// Head of the lock-free free list (a counted root: its current value
    /// contributes 1 to that node's count).
    free_head: CachePadded<Link<N>>,
    /// Per-thread free-node magazines (see [`crate::magazine`]): each slot
    /// is a bounded stack of free nodes in ordinary free-list state.
    slots: Box<[CachePadded<MagazineSlot<N>>]>,
    /// Grow serialization (kept out of `segments` so enumeration does not
    /// block growth decisions).
    grow_lock: Mutex<()>,
    counters: StatCounters,
    total_nodes: valois_sync::shim::atomic::AtomicUsize,
    max_nodes: Option<usize>,
    /// Epoch state for the [`crate::reclaim::Epoch`] backend (inert under
    /// [`RefCount`]: never pinned, limbo never populated).
    epoch: EpochDomain<N>,
    _backend: std::marker::PhantomData<R>,
}

impl<N: Managed + Default, R: Reclaimer> Arena<N, R> {
    /// Creates an arena with `config`, preallocating the initial segment.
    pub fn with_config(config: ArenaConfig) -> Self {
        let arena = Self {
            segments: Mutex::new(Vec::new()),
            free_head: CachePadded::new(Link::null()),
            slots: (0..MAG_SLOTS)
                .map(|_| CachePadded::new(MagazineSlot::default()))
                .collect(),
            grow_lock: Mutex::new(()),
            counters: StatCounters::default(),
            total_nodes: valois_sync::shim::atomic::AtomicUsize::new(0),
            max_nodes: config.max_nodes,
            epoch: EpochDomain::default(),
            _backend: std::marker::PhantomData,
        };
        let initial = match config.max_nodes {
            Some(max) => config.initial_capacity.min(max),
            None => config.initial_capacity,
        };
        arena.add_segment(initial.max(1));
        arena
    }

    /// Creates an arena with the default configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Allocates one segment of `count` default-constructed nodes and
    /// splices them onto the global free list as one pre-linked chain —
    /// a single CAS instead of `count` pushes on the shared head.
    fn add_segment(&self, count: usize) {
        let segment: Box<[N]> = (0..count).map(|_| N::default()).collect();
        let mut chain_head: *mut N = std::ptr::null_mut();
        let chain_tail = segment[0].free_link() as *const Link<N>; // first linked = chain tail
        let _ = chain_tail;
        let mut tail: *mut N = std::ptr::null_mut();
        for node in segment.iter() {
            let p = node as *const N as *mut N;
            // SAFETY: the segment is freshly boxed and still private to
            // this call. Fresh nodes are born detached (count 0, claim
            // set); install the free structure's incoming-pointer count,
            // then chain.
            unsafe {
                (*p).header().incr_ref();
                (*p).free_link().write(chain_head);
            }
            if tail.is_null() {
                tail = p;
            }
            chain_head = p;
        }
        self.splice_free_global(chain_head, tail);
        self.total_nodes
            .fetch_add(count, valois_sync::shim::atomic::Ordering::Relaxed);
        self.segments.lock().unwrap().push(segment);
        self.counters.bump(|s| &s.grows);
    }

    /// Grows the pool if permitted. Returns `false` when at `max_nodes`.
    fn try_grow(&self) -> bool {
        let _g = self.grow_lock.lock().unwrap();
        // Re-check after acquiring: another thread may have grown (or
        // released nodes) while we waited.
        if !self.free_head.read().is_null() {
            return true;
        }
        let current = self
            .total_nodes
            .load(valois_sync::shim::atomic::Ordering::Relaxed);
        let want = current.max(1); // double
        let want = match self.max_nodes {
            Some(max) if current >= max => return false,
            Some(max) => want.min(max - current),
            None => want,
        };
        self.add_segment(want);
        true
    }

    /// The paper's `Alloc` (Fig. 17): pops a free cell, re-initializes it,
    /// and returns it with one counted reference (the caller's).
    ///
    /// Fast path: the current thread's magazine — plain uncontended
    /// loads/stores, zero shared RMWs. An empty magazine refills from the
    /// global list in one batch; a *busy* magazine slot (another thread
    /// hashed to it) falls through to the global lock-free pop, so `Alloc`
    /// never blocks. An empty global list triggers a (mutex-guarded)
    /// growth attempt, then a scavenge of every magazine, before the pool
    /// is declared exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the pool is exhausted and capped.
    pub fn alloc(&self) -> Result<*mut N, AllocError> {
        let mut tally = MemTally::new();
        let result = self.alloc_inner(&mut tally);
        self.counters.absorb(&mut tally);
        result
    }

    fn alloc_inner(&self, tally: &mut MemTally) -> Result<*mut N, AllocError> {
        loop {
            if let Some(mut mag) = self.slot().try_lock() {
                let popped = mag.pop().or_else(|| self.refill_and_pop(&mut mag, tally));
                if let Some(p) = popped {
                    drop(mag);
                    return Ok(self.finish_alloc(p));
                }
            } else if let Some(p) = self.pop_free_global(tally) {
                // Slot contended: straight to the global Fig. 17 path
                // rather than waiting on the try-lock.
                return Ok(self.finish_alloc(p));
            }
            // Global list empty. Epoch backend: before growing (or
            // failing), force enough epoch advances for limbo garbage to
            // finish its grace period — otherwise a delete-heavy workload
            // would grow the pool (or exhaust a capped one) while
            // reclaimable memory sits in limbo.
            if self.pressure_collect(tally) > 0 {
                continue;
            }
            // Grow if permitted; otherwise pull back nodes parked in
            // other threads' magazines. Only when none of collect, grow,
            // or scavenge yields anything is the pool truly exhausted —
            // under the epoch backend that can mean a stalled reader is
            // pinning an old epoch: the `limbo_depth`/`pin_lag` gauges in
            // [`Arena::stats`] say so (see
            // `stalled_pin_surfaces_as_reclaim_pressure`).
            if !self.try_grow() && self.scavenge() == 0 {
                return Err(AllocError);
            }
        }
    }

    /// Fig. 17 lines 7-8 plus bookkeeping: the caller owns `p` (one
    /// counted reference, claim still set from its free life).
    fn finish_alloc(&self, p: *mut N) -> *mut N {
        self.counters.bump(|s| &s.allocs);
        valois_trace::probe!(Alloc, p as usize);
        // SAFETY: `p` was just popped off a free structure with its claim
        // still set — the caller is its sole owner until it is published.
        unsafe {
            debug_assert!((*p).header().claim_is_set(), "free node must be claimed");
            debug_assert!((*p).header().refcount() >= 1, "caller's count must exist");
            (*p).reset_for_alloc();
            // Fig. 17 line 8: Write(q^.claim, 0) — the single point where
            // claim is cleared, while we are sole owner.
            (*p).header().clear_claim();
        }
        p
    }

    /// Pops from the global free list (the paper's Fig. 17 lines 1-6) and
    /// pushes up to [`REFILL_BATCH`]` - 1` more nodes into the held
    /// magazine, amortizing the shared-head traffic over the magazine's
    /// subsequent private pops. Returns the caller's node.
    fn refill_and_pop(
        &self,
        mag: &mut MagazineGuard<'_, N>,
        tally: &mut MemTally,
    ) -> Option<*mut N> {
        let first = self.pop_free_global(tally)?;
        let mut refilled = 0u64;
        for _ in 1..REFILL_BATCH {
            match self.pop_free_global(tally) {
                Some(p) => {
                    mag.push(p);
                    refilled += 1;
                }
                None => break,
            }
        }
        valois_trace::probe!(MagRefill, refilled);
        Some(first)
    }

    /// Fig. 17 lines 1-6: SafeRead the head, CAS it to its successor.
    /// Returns a node carrying one counted reference (ours), claim set,
    /// `free_link` stale (its count was transferred to the head root).
    fn pop_free_global(&self, tally: &mut MemTally) -> Option<*mut N> {
        // WAIT-FREE: a failed CSW means another allocator popped the head
        // (or a reclaimer pushed one) — system-wide progress every retry.
        loop {
            // Fig. 17 line 1: q <- SafeRead(Freelist).
            // SAFETY: the free-list head is a counted root, so SafeRead's
            // contract holds. Counted under both backends: the count is
            // the pop's ABA protection (see `safe_read_counted`).
            let q = unsafe { self.safe_read_counted(&self.free_head, tally) };
            if q.is_null() {
                return None;
            }
            // SAFETY: our counted reference keeps `q` from being recycled,
            // so its free link is stable while `q` remains the head.
            let next = unsafe { (*q).free_link().read() };
            // Fig. 17 line 4: CSW(Freelist, q, q^.next).
            if self.free_head.compare_and_swap(q, next) {
                // Count transfer: the root's count on `q` dies (released
                // below — we keep our SafeRead count as the allocation
                // reference); the root now counts `next`, which
                // simultaneously lost the count held by `q`'s free link
                // (net zero for `next`).
                // SAFETY: releasing the root's dead count on `q`, exactly
                // once, on the arena that owns it.
                unsafe { self.release_into(q, tally) };
                return Some(q);
            }
            // Fig. 17 lines 5-6: lost the race; drop protection and retry.
            // SAFETY: releasing the SafeRead count acquired above.
            unsafe { self.release_into(q, tally) };
            self.counters.bump(|s| &s.alloc_retries);
        }
    }
}

impl<N: Managed + Default, R: Reclaimer> Default for Arena<N, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Managed, R: Reclaimer> Arena<N, R> {
    /// The current thread's magazine slot (threads may collide; the slot
    /// try-lock keeps collisions safe, the global path keeps them
    /// non-blocking).
    #[inline]
    fn slot(&self) -> &MagazineSlot<N> {
        &self.slots[valois_sync::sharded::thread_index() & (MAG_SLOTS - 1)]
    }

    /// The paper's `SafeRead` (Fig. 15): atomically reads the counted link
    /// `src` and acquires a counted reference on the target.
    ///
    /// Returns null if the link is null. A non-null result must eventually
    /// be passed to exactly one [`Arena::release`].
    ///
    /// # Safety
    ///
    /// `src` must be a *counted link of this arena*: a location whose
    /// non-null values are always addresses of this arena's nodes and whose
    /// current value always contributes 1 to its target's count (a structure
    /// root, or a field of a node the caller holds a counted reference on).
    pub unsafe fn safe_read(&self, src: &Link<N>) -> *mut N {
        let mut tally = MemTally::new();
        let q = self.safe_read_tallied(src, &mut tally);
        self.counters.absorb(&mut tally);
        q
    }

    /// [`Arena::safe_read`] with the statistics recorded into a caller
    /// tally instead of the shared counters — the hot-path variant for
    /// loops that perform many reads before flushing once (see
    /// [`MemTally`] and [`Arena::flush_tally`]).
    ///
    /// # Safety
    ///
    /// As [`Arena::safe_read`].
    pub unsafe fn safe_read_tallied(&self, src: &Link<N>, tally: &mut MemTally) -> *mut N {
        if !R::COUNTED_READS {
            // Epoch backend: the caller's pin is the protection — a plain
            // load, zero shared RMWs. The result must not outlive the pin
            // (and `release`-family calls on it become `unprotect`s).
            debug_assert!(
                self.epoch.current_thread_pinned(),
                "epoch-backend safe_read outside a pin"
            );
            let q = src.read();
            if !q.is_null() {
                tally.safe_reads += 1;
            }
            return q;
        }
        self.safe_read_counted(src, tally)
    }

    /// The counted Fig. 15 loop. Always used for the free-list head —
    /// under *both* backends — because the count it takes on the head
    /// node is what makes the free-list pop ABA-safe (a node with a
    /// transient SafeRead count can complete a full free→alloc→free
    /// cycle without ever re-reaching the head with a stale `free_link`).
    ///
    /// # Safety
    ///
    /// As [`Arena::safe_read`].
    unsafe fn safe_read_counted(&self, src: &Link<N>, tally: &mut MemTally) -> *mut N {
        loop {
            // Fig. 15 line 1: q <- Read(p).
            let q = src.read();
            if q.is_null() {
                return std::ptr::null_mut();
            }
            // Fig. 15 line 4: Increment(q^.refct). `q` may be stale — even
            // recycled — but it is always a valid node of this type-stable
            // arena, so the increment is memory-safe; the re-read below
            // rejects stale protections and `release` undoes the count.
            let prev = (*q).header().incr_ref();
            // Fig. 15 line 5: still current? Then our count was acquired
            // while `src` held a (counted) pointer to `q`, so `q` was live.
            if src.read() == q {
                tally.safe_reads += 1;
                valois_trace::probe!(SafeRead, q as usize, prev);
                return q;
            }
            // Fig. 15 lines 7-8.
            self.release_into(q, tally);
            tally.safe_read_retries += 1;
        }
    }

    /// Duplicates a counted reference the caller already holds (used when a
    /// held pointer is copied into a second long-lived location, e.g. a
    /// cursor field or a fresh node's link).
    ///
    /// # Safety
    ///
    /// The caller must hold a counted reference on non-null `p` (so it
    /// cannot be concurrently recycled).
    // GUARD: p — caller holds a counted reference for the call's duration.
    pub unsafe fn incr_ref(&self, p: *mut N) {
        if !p.is_null() {
            (*p).header().incr_ref();
        }
    }

    /// The paper's `Release` (Fig. 16): gives up one counted reference.
    /// If the count reaches zero, wins the `claim` arbitration and reclaims
    /// the node — draining its outgoing counted links (whose targets are
    /// released in turn, iteratively) and pushing it onto the free list.
    ///
    /// Null pointers are ignored (the paper's algorithms release cursor
    /// fields that may be NULL, e.g. `First` line 3 / `Update` line 5).
    ///
    /// # Safety
    ///
    /// Non-null `p` must be a counted reference obtained from this arena
    /// (`safe_read`/`incr_ref`/`alloc` or a drained link), released exactly
    /// once.
    // GUARD: p — caller holds the count being given up; `p`'s protection
    // window closes at this call.
    pub unsafe fn release(&self, p: *mut N) {
        if p.is_null() {
            return;
        }
        let mut tally = MemTally::new();
        self.release_into(p, &mut tally);
        self.counters.absorb(&mut tally);
    }

    /// Fig. 16, recording statistics into `tally` (shared by the batched
    /// paths so a whole drain flushes once).
    ///
    /// # Safety
    ///
    /// As [`Arena::release`], except `p` must be non-null.
    // GUARD: p — as `release`: the caller's count is consumed here.
    unsafe fn release_into(&self, p: *mut N, tally: &mut MemTally) {
        self.release_with(p, tally, true)
    }

    /// Fig. 16 with an explicit collection hint. `allow_collect = false`
    /// is used by the epoch collector's own drain releases so a cascade
    /// of retirements cannot recurse back into collection.
    ///
    /// # Safety
    ///
    /// As [`Arena::release`], except `p` must be non-null.
    // GUARD: p — as `release`: the caller's count is consumed here.
    unsafe fn release_with(&self, p: *mut N, tally: &mut MemTally, allow_collect: bool) {
        // The common case releases one node and touches nothing else; the
        // worklist is only needed when a reclamation cascades through the
        // dying node's outgoing links (e.g. a chain of deleted cells).
        let mut worklist: Vec<*mut N> = Vec::new();
        let mut current = p;
        let mut collect_due = false;
        // WAIT-FREE: one iteration per released reference in the dying
        // subgraph — no CAS retries (`try_claim` is one-shot per node).
        loop {
            tally.releases += 1;
            // Fig. 16 line 1: c <- Fetch&Add(p^.refct, -1).
            let prev = (*current).header().decr_ref();
            valois_trace::probe!(Release, current as usize, prev);
            if prev == 1 {
                // Count hit zero: Fig. 16 lines 4-7 — claim arbitration,
                // with the Michael & Scott correction: the claim CAS
                // requires the count to *still* be zero, so a claim
                // attempt delayed past a recycling of this node fails
                // instead of freeing the new allocation (see
                // `NodeHeader::try_claim` and `RefClaim`).
                if (*current).header().try_claim() {
                    if R::COUNTED_READS {
                        // We are the unique reclaimer. No process or link
                        // references remain, so reading/draining fields is
                        // exclusive.
                        let links = (*current).drain_links();
                        for target in links.iter() {
                            worklist.push(target);
                        }
                        tally.reclaims += 1;
                        self.push_free(current);
                    } else {
                        // Epoch backend: the link in-degree is zero, but
                        // pinned readers may still stand on (or traverse
                        // through) this node — links and payload stay
                        // intact, ownership passes to limbo. The drain
                        // cascade happens at collection, after the grace
                        // period (I12).
                        let retires = self.epoch.retire(current);
                        if retires.is_multiple_of(COLLECT_EVERY as u64) {
                            collect_due = true;
                        }
                    }
                }
            }
            match worklist.pop() {
                Some(next) => current = next,
                None => break,
            }
        }
        if collect_due && allow_collect {
            self.collect_into(tally);
        }
    }

    /// Epoch backend: one advance attempt plus one limbo sweep. Frees
    /// every limbo node whose grace period has elapsed (`retire_epoch + 2
    /// <= horizon`, I12) *and* whose count is zero — a nonzero count means
    /// a still-pinned thread installed a transient link to it (e.g. a
    /// deleter's `back_link` to an already-retired predecessor); such a
    /// node stays in limbo until the link is drained. Returns nodes freed.
    /// Instant no-op (0) under the refcount backend.
    fn collect_into(&self, tally: &mut MemTally) -> usize {
        if R::COUNTED_READS {
            return 0;
        }
        self.epoch.try_advance();
        let mut chain = self.epoch.take_limbo();
        if chain.is_null() {
            return 0;
        }
        // ORDER: the horizon scan is sequenced *after* take_limbo and
        // *before* the refcount checks below — a transient-link installer
        // either shows up pinned here (its old epoch keeps its node in
        // limbo) or its unpin happened-before this scan, making its
        // increment visible to the refcount check (I12).
        let horizon = self.epoch.horizon();
        let mut freed = 0usize;
        let mut kept = 0usize;
        while !chain.is_null() {
            let p = chain;
            // SAFETY: nodes on the taken limbo chain are claimed and owned
            // by this walk; `limbo_next` was published by their retire.
            unsafe {
                chain = (*p).header().limbo_next() as *mut N;
                let header = (*p).header();
                if header.retire_epoch() + 2 <= horizon && header.refcount() == 0 {
                    // Grace period over: no pin can reach the node and no
                    // link counts it. Drain now (dropping the payload,
                    // releasing link targets — which may retire more nodes
                    // into the *live* limbo list, not this private chain)
                    // and recycle.
                    let links = (*p).drain_links();
                    for target in links.iter() {
                        self.release_with(target, tally, false);
                    }
                    tally.reclaims += 1;
                    self.push_free(p);
                    freed += 1;
                } else {
                    self.epoch.requeue(p);
                    kept += 1;
                }
            }
        }
        self.epoch.note_freed(freed);
        valois_trace::probe!(EpochDrain, freed, kept);
        freed
    }

    /// Epoch backend, allocation-pressure path: force up to three
    /// advance+sweep rounds so garbage retired just before the pressure
    /// can finish its two-epoch grace period. Stops early on progress.
    /// Returns nodes freed; always 0 under the refcount backend.
    fn pressure_collect(&self, tally: &mut MemTally) -> usize {
        if R::COUNTED_READS {
            return 0;
        }
        let mut total = 0;
        for _ in 0..3 {
            total += self.collect_into(tally);
            if total > 0 {
                break;
            }
        }
        total
    }

    /// Parks a counted reference in `defer` instead of releasing it now;
    /// drains the whole buffer through ordinary [`Arena::release`]s when
    /// it is full. Deferral can only *delay* a count reaching zero —
    /// reclamation is postponed, never anticipated — so it is safe
    /// wherever `release` is (see [`crate::defer`]).
    ///
    /// # Safety
    ///
    /// As [`Arena::release`]; additionally, `defer` must be drained via
    /// [`Arena::drain_deferred`] on **this** arena before it is dropped
    /// (the parked pointers are this arena's counted references).
    // GUARD: p — caller holds the count being parked; it stays live (deref
    // remains legal) until the buffer is drained.
    pub unsafe fn release_deferred(&self, defer: &mut DeferredReleases<N>, p: *mut N) {
        if p.is_null() {
            return;
        }
        if defer.len == DEFER_CAP {
            self.drain_deferred(defer);
        }
        defer.buf[defer.len] = p;
        defer.len += 1;
    }

    /// Releases every reference parked in `defer` (Fig. 16 each), sharing
    /// one statistics flush across the batch.
    ///
    /// # Safety
    ///
    /// `defer`'s parked pointers must be counted references of this arena
    /// (they are, if they were parked by [`Arena::release_deferred`] on
    /// this arena).
    pub unsafe fn drain_deferred(&self, defer: &mut DeferredReleases<N>) {
        if defer.len == 0 {
            return;
        }
        valois_trace::probe!(DeferFlush, defer.len);
        let mut tally = MemTally::new();
        for i in 0..defer.len {
            self.release_into(defer.buf[i], &mut tally);
        }
        defer.len = 0;
        self.counters.absorb(&mut tally);
    }

    /// Folds a [`MemTally`] filled by [`Arena::safe_read_tallied`] into
    /// the shared counters and clears it. Call when the batching loop ends
    /// (the list cursor calls it on drop).
    pub fn flush_tally(&self, tally: &mut MemTally) {
        if !tally.is_empty() {
            self.counters.absorb(tally);
        }
    }

    /// The paper's `Reclaim` (Fig. 18): returns a claimed, drained node to
    /// the free structure. Fast path: the current thread's magazine (no
    /// shared RMW); a busy slot falls back to the global Treiber push, and
    /// an over-full magazine flushes half of itself to the global list in
    /// one splice.
    fn push_free(&self, p: *mut N) {
        valois_trace::probe!(Reclaim, p as usize);
        // The free structure's incoming pointer is a counted reference:
        // *add* 1 (never store — a store would erase a concurrent transient
        // SafeRead increment; see crate docs "corrections").
        // SAFETY: the caller is the unique reclaimer (claim held), so `p`
        // is a valid, unpublished node of this arena.
        unsafe {
            (*p).header().incr_ref();
        }
        if let Some(mut mag) = self.slot().try_lock() {
            mag.push(p);
            let len = mag.len();
            if len > MAGAZINE_CAP {
                if let Some((h, t, taken)) = mag.take_chain(len - MAGAZINE_CAP / 2) {
                    self.splice_free_global(h, t);
                    valois_trace::probe!(MagFlush, taken);
                }
            }
            return;
        }
        self.push_free_global(p);
    }

    /// Fig. 18 proper: Treiber push of one node already carrying its
    /// free-structure count.
    fn push_free_global(&self, p: *mut N) {
        // WAIT-FREE: a failed CAS means another push or pop moved the head
        // — system-wide progress every retry.
        loop {
            // Fig. 18 lines 1-3. Plain read (not SafeRead): we never
            // dereference the old head, so a stale value only costs a CAS
            // retry, and head-recycling ABA is harmless because re-linking
            // the *current* head is exactly what push wants.
            let head = self.free_head.read();
            // SAFETY: `p` is unpublished (ours alone) until the CAS below.
            unsafe {
                (*p).free_link().write(head);
            }
            if self.free_head.compare_and_swap(head, p) {
                // Count transfer: root's count on `head` moves to
                // `p.free_link`; root now counts `p`.
                break;
            }
        }
    }

    /// Splices a pre-linked chain of free nodes (each internally counted,
    /// `chain_head` carrying the one loose count) onto the global list
    /// with a single CAS. The chain tail's `free_link` is overwritten with
    /// the old head *before* the CAS publishes it, so its stale value is
    /// never observable.
    fn splice_free_global(&self, chain_head: *mut N, chain_tail: *mut N) {
        // WAIT-FREE: a failed CAS means another push or pop moved the head
        // — system-wide progress every retry.
        loop {
            let head = self.free_head.read();
            // SAFETY: the chain is private until the CAS below publishes it.
            unsafe {
                (*chain_tail).free_link().write(head);
            }
            if self.free_head.compare_and_swap(head, chain_head) {
                // Count transfer: root's count on `head` moves to
                // `chain_tail.free_link`; root now counts `chain_head`.
                break;
            }
        }
    }

    /// Flushes every magazine it can lock back to the global free list.
    /// Returns the number of nodes moved. Called on pool pressure before
    /// reporting [`AllocError`]; slots busy at that instant are skipped
    /// (their owner is mid-operation and will see the pressure itself).
    fn scavenge(&self) -> usize {
        let mut moved = 0;
        for slot in self.slots.iter() {
            if let Some(mut mag) = slot.try_lock() {
                let len = mag.len();
                if let Some((h, t, taken)) = mag.take_chain(len) {
                    self.splice_free_global(h, t);
                    valois_trace::probe!(MagFlush, taken);
                    moved += taken;
                }
            }
        }
        moved
    }

    /// Flushes every thread magazine back to the global free list and
    /// returns the number of nodes moved. Quiescence/teardown hook: after
    /// this (with no concurrent operations), every free node is reachable
    /// from the global free head.
    pub fn flush_thread_caches(&self) -> usize {
        self.scavenge()
    }

    /// Memory-pressure shed hook for layers that can retry a failed
    /// operation: flushes every lockable per-thread magazine back to the
    /// global free list and, under the epoch backend, runs bounded
    /// advance+sweep rounds so limbo garbage whose grace period can now
    /// elapse is recycled. Returns the number of nodes made allocatable
    /// (magazine nodes moved plus limbo nodes freed).
    ///
    /// [`Arena::alloc`] already sheds under pressure — but it runs
    /// *inside* the failing operation, where the calling thread's own
    /// epoch pin (its live cursor) blocks every advance, so garbage that
    /// operation (or its neighbours in the same window) retired can
    /// never finish the two-epoch grace period (I12). The service-layer
    /// contract is therefore: on [`AllocError`], drop every protecting
    /// guard first, call `shed_memory`, and retry — what the bare
    /// pinned alloc could not free, the unpinned shed can. Calling it
    /// while still pinned is safe but sheds magazines only.
    pub fn shed_memory(&self) -> usize {
        let mut tally = MemTally::new();
        let mut reclaimed = self.scavenge();
        if !R::COUNTED_READS {
            // Two advance+sweep rounds end any grace period that can end
            // (each round's try_advance moves one epoch when no stale pin
            // holds it back); extra rounds pick up nodes whose last link
            // was only released by an earlier round's drain. Bounded so a
            // concurrently stalled reader cannot spin us.
            let mut rounds = 0;
            loop {
                let freed = self.collect_into(&mut tally);
                reclaimed += freed;
                rounds += 1;
                if (freed == 0 && rounds >= 2) || rounds >= 8 {
                    break;
                }
            }
        }
        valois_trace::probe!(MemShed, reclaimed);
        self.counters.absorb(&mut tally);
        reclaimed
    }

    /// Counted-link CAS swing with automatic count transfer.
    ///
    /// Increments `new`'s count (the prospective link), attempts
    /// `CAS(loc, old, new)`, and on success releases `old` (the count the
    /// link held); on failure the increment is undone. Returns the CAS
    /// outcome, which is the paper's "cursor became invalid" retry signal.
    ///
    /// # Safety
    ///
    /// `loc` must be a counted link of this arena; the caller must hold
    /// counted references on non-null `old` and `new` (this is what makes
    /// the CAS ABA-free: `old` cannot be recycled while protected).
    // GUARD: old, new — caller holds a count on each; the caller's counts
    // survive the call (only the link's own count moves).
    pub unsafe fn swing(&self, loc: &Link<N>, old: *mut N, new: *mut N) -> bool {
        self.counters.bump(|s| &s.swings);
        self.incr_ref(new);
        if loc.compare_and_swap(old, new) {
            self.release(old);
            true
        } else {
            self.release(new);
            self.counters.bump(|s| &s.swing_failures);
            false
        }
    }

    /// Initializing store into a link of an *unpublished* node (fresh from
    /// [`Arena::alloc`], not yet reachable by other processes): installs
    /// `new` with a count, releasing whatever the link previously counted
    /// (non-null only when a retry loop re-targets a prepared node, e.g.
    /// `TryInsert` rewriting `a^.next` after an invalid cursor).
    ///
    /// # Safety
    ///
    /// The node owning `loc` must be unpublished (exclusively owned);
    /// the caller must hold a counted reference on non-null `new`.
    // GUARD: new — caller holds a count on `new`; the link takes its own.
    pub unsafe fn store_link(&self, loc: &Link<N>, new: *mut N) {
        self.incr_ref(new);
        let old = loc.swap(new);
        self.release(old);
    }

    /// Returns a *detached* node to the free list: count zero and `claim`
    /// already won by the caller. This is the hook for owners' quiescent
    /// cycle collection (back-link cycles among simultaneously deleted
    /// cells are unreachable garbage that plain counting cannot free; see
    /// DESIGN.md §1 note 3).
    ///
    /// # Safety
    ///
    /// The caller must have exclusive ownership of `p` (won its claim, all
    /// counted links drained, count zero) and guarantee no concurrent
    /// protocol activity can reach `p`.
    // GUARD: p — caller owns `p` exclusively; nothing else can free it
    // during the call.
    pub unsafe fn reclaim_detached(&self, p: *mut N) {
        debug_assert_eq!((*p).header().refcount(), 0);
        debug_assert!((*p).header().claim_is_set());
        self.counters.bump(|s| &s.reclaims);
        self.push_free(p);
    }

    /// Pins the current thread for one epoch-protected operation and
    /// returns a guard that unpins on drop. Under the refcount backend
    /// both directions are no-ops.
    ///
    /// While pinned, [`Arena::safe_read`] results are plain loads; they
    /// must not be used after the guard drops (that is the epoch
    /// backend's version of the protection window — I12).
    pub fn pin(&self) -> EpochGuard<'_, N, R> {
        self.pin_enter();
        EpochGuard { arena: self }
    }

    /// Manual variant of [`Arena::pin`] for owners that cannot hold a
    /// guard (the list cursor pins in its constructor and unpins in its
    /// `Drop`). Must be balanced by exactly one [`Arena::pin_exit`].
    pub fn pin_enter(&self) {
        if !R::COUNTED_READS {
            self.epoch.pin();
        }
    }

    /// Releases a pin taken by [`Arena::pin_enter`].
    pub fn pin_exit(&self) {
        if !R::COUNTED_READS {
            self.epoch.unpin();
        }
    }

    /// Gives up a *process* reference: [`Arena::release`] under the
    /// refcount backend, a no-op under the epoch backend (the reference
    /// was never counted — the pin was the protection).
    ///
    /// Link counts (installed by [`Arena::swing`]/[`Arena::store_link`]/
    /// [`Arena::incr_ref`]) must still be given up with [`Arena::release`]
    /// under both backends.
    ///
    /// # Safety
    ///
    /// Refcount backend: as [`Arena::release`]. Epoch backend: `p` came
    /// from a `safe_read` under a pin the current thread still holds.
    // GUARD: p — the process reference's protection window closes here.
    pub unsafe fn unprotect(&self, p: *mut N) {
        if R::COUNTED_READS {
            self.release(p);
        }
    }

    /// Deferred-buffer variant of [`Arena::unprotect`]
    /// ([`Arena::release_deferred`] under refcount, no-op under epoch —
    /// the buffer stays empty, so its drain is free).
    ///
    /// # Safety
    ///
    /// As [`Arena::release_deferred`] / [`Arena::unprotect`].
    // GUARD: p — caller holds the process reference being parked; it stays
    // live until the buffer is drained.
    pub unsafe fn unprotect_deferred(&self, defer: &mut DeferredReleases<N>, p: *mut N) {
        if R::COUNTED_READS {
            self.release_deferred(defer, p);
        }
    }

    /// Duplicates a *process* reference ([`Arena::incr_ref`] under
    /// refcount, no-op under epoch — the new copy is covered by the same
    /// pin). For duplicating a pointer into a counted *link*, use
    /// [`Arena::incr_ref`]/[`Arena::store_link`] under both backends.
    ///
    /// # Safety
    ///
    /// Refcount backend: as [`Arena::incr_ref`]. Epoch backend: the
    /// current thread must hold a pin protecting `p`.
    // GUARD: p — caller holds a protected reference for the call's
    // duration; a second process-reference window opens here.
    pub unsafe fn protect_dup(&self, p: *mut N) {
        if R::COUNTED_READS {
            self.incr_ref(p);
        } else {
            debug_assert!(
                p.is_null() || self.epoch.current_thread_pinned(),
                "protect_dup outside a pin"
            );
        }
    }

    /// Epoch backend: attempts one epoch advance and sweeps limbo,
    /// freeing every node whose grace period has elapsed. Returns nodes
    /// freed (always 0 under the refcount backend). Safe to call from any
    /// thread at any time; the amortized retire/alloc hooks call it
    /// automatically, this is the explicit handle for tests and
    /// quiescent maintenance.
    pub fn advance_and_collect(&self) -> usize {
        let mut tally = MemTally::new();
        let freed = self.collect_into(&mut tally);
        self.counters.absorb(&mut tally);
        freed
    }

    /// Epoch backend, quiescent teardown: repeatedly advances and sweeps
    /// until limbo stops shrinking. With no pins outstanding (`&mut self`
    /// guarantees that — every guard and cursor borrows the arena) this
    /// frees all acyclic limbo garbage; what remains is back-link cycle
    /// garbage for the owner's cycle collector (see
    /// [`Arena::take_limbo_quiescent`]). Returns nodes freed.
    pub fn quiescent_collect_epoch(&mut self) -> usize {
        if R::COUNTED_READS {
            return 0;
        }
        let mut total = 0;
        let mut dry = 0;
        while self.epoch.limbo_depth() > 0 && dry < 3 {
            let freed = self.advance_and_collect();
            total += freed;
            // Fresh garbage needs two advances to age out (I12); allow a
            // few dry rounds before concluding the rest is cyclic.
            dry = if freed == 0 { dry + 1 } else { 0 };
        }
        total
    }

    /// Epoch backend, quiescent teardown: detaches every remaining limbo
    /// node and returns them. The nodes are claimed, unreachable from any
    /// root, with links and payload intact — exactly the shape the
    /// owner's quiescent cycle collector expects (it must drain and
    /// [`Arena::reclaim_detached`] them). The refcount backend returns an
    /// empty vector.
    pub fn take_limbo_quiescent(&mut self) -> Vec<*mut N> {
        let mut out = Vec::new();
        let mut chain = self.epoch.take_limbo();
        while !chain.is_null() {
            out.push(chain);
            // SAFETY: quiescent (&mut self): the taken chain is exclusively
            // ours and every node on it is a valid node of this arena.
            chain = unsafe { (*chain).header().limbo_next() } as *mut N;
        }
        self.epoch.note_freed(out.len());
        out
    }

    /// Snapshot of the protocol counters.
    ///
    /// Hot paths batch events thread-locally ([`MemTally`]); counts parked
    /// in un-flushed tallies (e.g. a still-live cursor's) are not yet
    /// visible here. The `epoch_*` fields are live gauges/counters from
    /// the arena's [`EpochDomain`] (all zero under the refcount backend).
    pub fn stats(&self) -> MemStats {
        let mut s = self.counters.snapshot();
        let (pins, advances, retires, frees) = self.epoch.counters();
        s.epoch_pins = pins;
        s.epoch_advances = advances;
        s.epoch_retires = retires;
        s.epoch_frees = frees;
        s.epoch_limbo_depth = self.epoch.limbo_depth() as u64;
        s.epoch_pin_lag = self.epoch.pin_lag() as u64;
        s
    }

    /// Total nodes owned by the arena (free + live).
    pub fn capacity(&self) -> usize {
        self.total_nodes
            .load(valois_sync::shim::atomic::Ordering::Relaxed)
    }

    /// Nodes currently allocated (checked out and not yet reclaimed).
    pub fn live_nodes(&self) -> u64 {
        self.stats().live_nodes()
    }

    /// Visits the address of every node the arena owns (free or live).
    ///
    /// Safe in itself — the callback receives raw addresses and headers may
    /// be inspected through atomics at any time — but dereferencing payload
    /// fields requires the caller to guarantee quiescence (e.g. the
    /// structure's `&mut self` drop/collect paths).
    pub fn for_each_node(&self, mut f: impl FnMut(*mut N)) {
        let segments = self.segments.lock().unwrap();
        for segment in segments.iter() {
            for node in segment.iter() {
                f(node as *const N as *mut N);
            }
        }
    }
}

impl<N: Managed, R: Reclaimer> fmt::Debug for Arena<N, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("backend", &R::NAME)
            .field("capacity", &self.capacity())
            .field("live_nodes", &self.live_nodes())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<N: Managed, R: Reclaimer> Drop for Arena<N, R> {
    fn drop(&mut self) {
        if R::COUNTED_READS {
            return;
        }
        // Epoch backend backstop: graduate what limbo still holds so node
        // payloads are dropped, not leaked, when a bare arena is dropped
        // with garbage mid-grace. (Structure owners normally drain first
        // via their quiescent collectors; this also catches cycle garbage
        // by force-draining links without count bookkeeping — the memory
        // itself dies with the segments below.)
        self.quiescent_collect_epoch();
        for p in self.take_limbo_quiescent() {
            // SAFETY: &mut self — no pins, no other references; draining
            // drops the payload. The returned link targets are not
            // released: every remaining node is about to die with the
            // arena, so counts no longer matter.
            unsafe {
                let _ = (*p).drain_links();
            }
        }
    }
}

/// RAII pin for one epoch-protected operation (see [`Arena::pin`]).
/// Under the refcount backend, creation and drop are no-ops.
///
/// Pointers obtained from `safe_read` while the guard lives must not be
/// used after it drops — dropping the guard closes the protection window
/// (I12), exactly as `release` does for a counted reference.
#[must_use = "dropping the guard immediately unpins the epoch"]
pub struct EpochGuard<'a, N: Managed, R: Reclaimer> {
    arena: &'a Arena<N, R>,
}

impl<N: Managed, R: Reclaimer> Drop for EpochGuard<'_, N, R> {
    fn drop(&mut self) {
        self.arena.pin_exit();
    }
}

impl<N: Managed, R: Reclaimer> fmt::Debug for EpochGuard<'_, N, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochGuard")
            .field("backend", &R::NAME)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managed::{NodeHeader, ReclaimedLinks};
    use std::sync::Arc;
    use valois_sync::shim::atomic::{AtomicU64, Ordering};

    /// Minimal managed node: one value slot and two counted links, mirroring
    /// the list's cell shape.
    #[derive(Default)]
    struct TestNode {
        header: NodeHeader,
        next: Link<TestNode>,
        back: Link<TestNode>,
        value: AtomicU64,
    }

    impl Managed for TestNode {
        fn header(&self) -> &NodeHeader {
            &self.header
        }

        fn free_link(&self) -> &Link<Self> {
            &self.next
        }

        fn drain_links(&self) -> ReclaimedLinks<Self> {
            let mut links = ReclaimedLinks::new();
            links.push(self.next.swap(std::ptr::null_mut()));
            links.push(self.back.swap(std::ptr::null_mut()));
            links
        }

        fn reset_for_alloc(&self) {
            // next held the free-list link whose count was transferred to
            // the free-list head at pop: null it without releasing.
            self.next.write(std::ptr::null_mut());
            self.back.write(std::ptr::null_mut());
            self.value.store(0, Ordering::Relaxed);
        }
    }

    fn small_arena(cap: usize) -> Arena<TestNode> {
        Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap))
    }

    #[test]
    fn alloc_returns_reset_node_with_one_reference() {
        let arena = small_arena(4);
        let p = arena.alloc().unwrap();
        unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!(!(*p).header().claim_is_set());
            assert!((*p).next.read().is_null());
        }
        unsafe { arena.release(p) };
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn release_reclaims_and_node_is_reusable() {
        let arena = small_arena(1);
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        let q = arena.alloc().unwrap();
        assert_eq!(p, q, "single-node pool must recycle the same node");
        unsafe { arena.release(q) };
    }

    #[test]
    fn exhaustion_reports_alloc_error() {
        let arena = small_arena(2);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        assert_eq!(arena.alloc(), Err(AllocError));
        unsafe {
            arena.release(a);
            arena.release(b);
        }
        assert!(arena.alloc().is_ok(), "released node must be allocatable");
    }

    /// Regression for the service-load AllocError contract: an
    /// allocation that fails *inside* a protection window (the calling
    /// thread's own epoch pin holds every retired node's grace period
    /// open — I12) must succeed after the window closes and
    /// [`Arena::shed_memory`] drains the limbo list. The bare in-window
    /// alloc failing first is part of the assertion: it shows the
    /// arena-internal pressure path genuinely cannot help here.
    #[test]
    fn pinned_alloc_error_then_unpinned_shed_retry_succeeds() {
        let cap = 8;
        let arena: Arena<TestNode, crate::Epoch> =
            Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
        let guard = arena.pin();
        // Exhaust the pool and retire everything while pinned: the
        // garbage parks in limbo stamped with the pinned epoch.
        let nodes: Vec<_> = (0..cap).map(|_| arena.alloc().unwrap()).collect();
        for &p in &nodes {
            // SAFETY: each pointer carries the alloc's counted reference.
            unsafe { arena.release(p) };
        }
        // Bare retry inside the window: pressure_collect cannot advance
        // past our own pin, grow is capped, magazines are empty — the
        // alloc fails even though every node in the pool is reclaimable.
        assert_eq!(
            arena.alloc(),
            Err(AllocError),
            "alloc under the caller's own pin must not reach limbo garbage"
        );
        assert!(
            arena.stats().epoch_limbo_depth > 0,
            "the garbage must be parked in limbo, not lost"
        );
        // Close the window, shed, retry: the post-shed retry succeeds.
        drop(guard);
        let shed = arena.shed_memory();
        assert!(shed > 0, "shed must recycle the limbo garbage");
        let p = arena.alloc().expect("post-shed retry must succeed");
        // SAFETY: p carries the alloc's counted reference.
        unsafe { arena.release(p) };
    }

    /// Refcount twin: `shed_memory` moves nodes parked in per-thread
    /// magazines back to the global free list (and reports the count).
    #[test]
    fn shed_memory_flushes_magazines_under_refcount() {
        let arena = small_arena(16);
        // Churn so released nodes park in this thread's magazine.
        let held: Vec<_> = (0..16).map(|_| arena.alloc().unwrap()).collect();
        for &p in &held {
            // SAFETY: each pointer carries the alloc's counted reference.
            unsafe { arena.release(p) };
        }
        let moved = arena.shed_memory();
        assert!(moved > 0, "magazine nodes must be shed to the global list");
        // The shed nodes are allocatable (from the global list).
        let p = arena.alloc().expect("shed nodes must be allocatable");
        // SAFETY: p carries the alloc's counted reference.
        unsafe { arena.release(p) };
    }

    #[test]
    fn uncapped_arena_grows_by_doubling() {
        let arena: Arena<TestNode> = Arena::with_config(ArenaConfig::new().initial_capacity(2));
        let mut held = Vec::new();
        for _ in 0..10 {
            held.push(arena.alloc().unwrap());
        }
        assert!(arena.capacity() >= 10);
        assert!(arena.stats().grows >= 2);
        for p in held {
            unsafe { arena.release(p) };
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn drained_links_release_targets_transitively() {
        let arena = small_arena(8);
        // Build a -> b -> c via counted links, then drop all process refs:
        // releasing `a` must cascade and reclaim all three.
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        unsafe {
            (*b).next.write(c); // b's link now counts c: transfer our process ref
            (*a).next.write(b); // a's link now counts b
                                // (we transferred our alloc references into the links, so no
                                // incr_ref: each node's count is exactly 1, held by its parent.)
            assert_eq!((*c).header().refcount(), 1);
            arena.release(a);
        }
        assert_eq!(arena.live_nodes(), 0, "cascade must reclaim a, b, c");
        // All three must be allocatable again.
        let mut got = std::collections::HashSet::new();
        for _ in 0..3 {
            got.insert(arena.alloc().unwrap() as usize);
        }
        assert!(got.contains(&(a as usize)));
        assert!(got.contains(&(b as usize)));
        assert!(got.contains(&(c as usize)));
    }

    #[test]
    fn safe_read_protects_against_concurrent_unlink() {
        let arena = Arc::new(small_arena(64));
        // A root link that one thread repeatedly re-targets while others
        // safe_read through it; counts must stay exact.
        let root: Arc<Link<TestNode>> = Arc::new(Link::null());
        let init = arena.alloc().unwrap();
        unsafe { arena.store_link(&root, init) };
        unsafe { arena.release(init) };

        std::thread::scope(|s| {
            let writer = {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        let n = arena.alloc().unwrap();
                        unsafe {
                            (*n).value.store(i, Ordering::Relaxed);
                            // Publish: swing root from whatever it held.
                            loop {
                                let old = arena.safe_read(&root);
                                let ok = arena.swing(&root, old, n);
                                arena.release(old);
                                if ok {
                                    break;
                                }
                            }
                            arena.release(n);
                        }
                    }
                })
            };
            for _ in 0..3 {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        unsafe {
                            let p = arena.safe_read(&root);
                            if !p.is_null() {
                                // Reading the payload of a protected node
                                // must always be coherent.
                                let _ = (*p).value.load(Ordering::Relaxed);
                                arena.release(p);
                            }
                        }
                    }
                });
            }
            writer.join().unwrap();
        });

        // Quiesce: drop the root's node.
        unsafe {
            let last = arena.safe_read(&root);
            assert!(arena.swing(&root, last, std::ptr::null_mut()));
            arena.release(last);
        }
        assert_eq!(arena.live_nodes(), 0, "all nodes reclaimed after quiesce");
        // Every node's count must be exactly its free structure's 1 —
        // whether parked on the global list or in a thread magazine.
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!((*p).header().claim_is_set());
        });
    }

    #[test]
    fn concurrent_alloc_release_conserves_nodes() {
        let arena = Arc::new(small_arena(256));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let arena = Arc::clone(&arena);
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..10_000usize {
                        if i % 3 == 2 {
                            if let Some(p) = held.pop() {
                                unsafe { arena.release(p) };
                            }
                        } else if let Ok(p) = arena.alloc() {
                            held.push(p);
                        }
                        if held.len() > 16 {
                            for p in held.drain(..) {
                                unsafe { arena.release(p) };
                            }
                        }
                    }
                    for p in held {
                        unsafe { arena.release(p) };
                    }
                });
            }
        });
        assert_eq!(arena.live_nodes(), 0);
        let mut free = 0usize;
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1, "free node count must be 1");
            free += 1;
        });
        assert_eq!(free, 256);
    }

    #[test]
    fn concurrent_growth_is_consistent() {
        // Many threads alloc-hold-release against a tiny initial segment:
        // growth must serialize correctly and never duplicate or lose
        // nodes.
        let arena: Arc<Arena<TestNode>> =
            Arc::new(Arena::with_config(ArenaConfig::new().initial_capacity(2)));
        let seen = std::sync::Mutex::new(std::collections::HashSet::<usize>::new());
        // Nobody releases until every thread holds its full batch, so the
        // distinctness check really is over simultaneously-live nodes.
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let arena = Arc::clone(&arena);
                let seen = &seen;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..200 {
                        let p = arena.alloc().expect("uncapped arena grows");
                        held.push(p);
                    }
                    {
                        let mut set = seen.lock().unwrap();
                        for &p in &held {
                            assert!(set.insert(p as usize), "duplicate live node");
                        }
                    }
                    barrier.wait();
                    for p in held {
                        unsafe { arena.release(p) };
                    }
                });
            }
        });
        assert_eq!(
            seen.lock().unwrap().len(),
            800,
            "every allocation distinct while simultaneously held"
        );
        assert!(arena.capacity() >= 800);
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn swing_failure_undoes_count() {
        let arena = small_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        let root: Link<TestNode> = Link::null();
        unsafe {
            arena.store_link(&root, a);
            // CAS expecting `b` must fail and leave counts unchanged.
            let before = (*c).header().refcount();
            assert!(!arena.swing(&root, b, c));
            assert_eq!((*c).header().refcount(), before);
            assert_eq!(root.read(), a);
            // Clean up: unlink a, release all.
            assert!(arena.swing(&root, a, std::ptr::null_mut()));
            arena.release(a);
            arena.release(b);
            arena.release(c);
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn stats_track_traffic() {
        let arena = small_arena(8);
        let base = arena.stats();
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        let d = arena.stats().since(&base);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.reclaims, 1);
        assert!(d.safe_reads >= 1, "alloc uses SafeRead on the free head");
        assert!(d.releases >= 2, "pop transfer + final release");
    }

    #[test]
    fn config_builders_clamp_to_minimums() {
        let c = ArenaConfig::new().initial_capacity(0).max_nodes(0);
        assert_eq!(c.initial_capacity, 1);
        assert_eq!(c.max_nodes, Some(1));
        assert_eq!(format!("{}", AllocError), "node pool exhausted");
    }

    #[test]
    fn for_each_node_visits_exactly_capacity() {
        let arena = small_arena(17);
        let mut count = 0;
        arena.for_each_node(|_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn store_link_replaces_and_releases_old() {
        let arena = small_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let fresh = arena.alloc().unwrap();
        unsafe {
            // fresh.next := a (counted), then re-target to b: a's count from
            // the link must drop. store_link itself installs the link count.
            arena.store_link(&(*fresh).next, a);
            assert_eq!((*a).header().refcount(), 2);
            arena.store_link(&(*fresh).next, b);
            assert_eq!((*a).header().refcount(), 1);
            assert_eq!((*b).header().refcount(), 2);
            arena.release(a);
            arena.release(b);
            arena.release(fresh); // drains fresh.next -> releases b
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn magazine_absorbs_alloc_release_cycles_without_global_traffic() {
        // After a warm-up alloc/release, a repeated single-node cycle runs
        // entirely against the thread magazine: the global head is
        // untouched, so alloc_retries stays 0 and (crucially) the same
        // node keeps being recycled.
        let arena = small_arena(8);
        let p0 = arena.alloc().unwrap();
        unsafe { arena.release(p0) };
        for _ in 0..1000 {
            let p = arena.alloc().unwrap();
            assert_eq!(p, p0, "magazine must recycle LIFO");
            unsafe { arena.release(p) };
        }
        let s = arena.stats();
        assert_eq!(s.allocs, 1001);
        assert_eq!(s.reclaims, 1001);
        assert_eq!(s.alloc_retries, 0);
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn flush_thread_caches_empties_magazines() {
        let arena = small_arena(16);
        // Park a few nodes in this thread's magazine.
        let held: Vec<_> = (0..4).map(|_| arena.alloc().unwrap()).collect();
        for p in held {
            unsafe { arena.release(p) };
        }
        let moved = arena.flush_thread_caches();
        assert!(moved >= 4, "magazine held at least the 4 recycled nodes");
        assert_eq!(arena.flush_thread_caches(), 0, "second flush finds nothing");
        // Conservation after the flush: all 16 free, each count 1.
        let mut free = 0;
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!((*p).header().claim_is_set());
            free += 1;
        });
        assert_eq!(free, 16);
    }

    #[test]
    fn capped_pool_scavenges_magazines_under_pressure() {
        // Fill-and-release so nodes park in this thread's magazine, then
        // demand the whole pool at once: alloc must scavenge the parked
        // nodes back rather than report exhaustion.
        let arena = small_arena(8);
        let held: Vec<_> = (0..8).map(|_| arena.alloc().unwrap()).collect();
        for p in held {
            unsafe { arena.release(p) };
        }
        // All 8 nodes are somewhere between magazine and global list now.
        let again: Vec<_> = (0..8)
            .map(|i| arena.alloc().unwrap_or_else(|e| panic!("alloc {i}: {e}")))
            .collect();
        assert_eq!(arena.alloc(), Err(AllocError), "pool truly exhausted");
        for p in again {
            unsafe { arena.release(p) };
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn deferred_release_delays_but_completes_reclamation() {
        let arena = small_arena(4);
        let mut defer = crate::DeferredReleases::new();
        let p = arena.alloc().unwrap();
        unsafe { arena.release_deferred(&mut defer, p) };
        assert_eq!(defer.len(), 1);
        assert_eq!(
            arena.live_nodes(),
            1,
            "parked reference must keep the node checked out"
        );
        unsafe { arena.drain_deferred(&mut defer) };
        assert!(defer.is_empty());
        assert_eq!(arena.live_nodes(), 0, "drain performs the release");
    }

    #[test]
    fn deferred_release_auto_drains_at_capacity() {
        let cap = crate::DeferredReleases::<TestNode>::CAPACITY;
        let arena = Arena::<TestNode>::with_config(ArenaConfig::new().initial_capacity(cap + 2));
        let mut defer = crate::DeferredReleases::new();
        // Park CAPACITY + 1 references: the overflow push must first drain
        // the full buffer.
        for _ in 0..=cap {
            let p = arena.alloc().unwrap();
            unsafe { arena.release_deferred(&mut defer, p) };
        }
        assert_eq!(defer.len(), 1, "auto-drain leaves only the overflow entry");
        assert_eq!(arena.live_nodes(), 1);
        unsafe { arena.drain_deferred(&mut defer) };
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn tallied_safe_read_defers_stats_until_flush() {
        let arena = small_arena(4);
        let root: Link<TestNode> = Link::null();
        let p = arena.alloc().unwrap();
        unsafe { arena.store_link(&root, p) };
        let base = arena.stats();
        let mut tally = MemTally::new();
        for _ in 0..10 {
            let q = unsafe { arena.safe_read_tallied(&root, &mut tally) };
            unsafe { arena.release(q) };
        }
        assert_eq!(
            arena.stats().since(&base).safe_reads,
            0,
            "tallied reads are invisible before the flush"
        );
        arena.flush_tally(&mut tally);
        assert_eq!(arena.stats().since(&base).safe_reads, 10);
        assert!(tally.is_empty());
        unsafe {
            let q = root.swap(std::ptr::null_mut());
            arena.release(q);
            arena.release(p);
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    // ---- epoch backend ----

    use crate::reclaim::Epoch;

    fn small_epoch_arena(cap: usize) -> Arena<TestNode, Epoch> {
        Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap))
    }

    #[test]
    fn epoch_release_retires_then_grace_period_recycles() {
        let arena = small_epoch_arena(1);
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        // Retired into limbo, not yet recycled: the grace period is open.
        let s = arena.stats();
        assert_eq!(s.epoch_retires, 1);
        assert_eq!(s.epoch_limbo_depth, 1);
        // A pool of one with its node in limbo: alloc must force the
        // grace period closed (pressure collection) and recycle it.
        let q = arena.alloc().unwrap();
        assert_eq!(p, q, "single-node pool must recycle the same node");
        let s = arena.stats();
        assert!(s.epoch_frees >= 1);
        assert!(
            s.epoch_advances >= 2,
            "two-epoch grace (I12) needs at least two advances"
        );
        unsafe { arena.release(q) };
    }

    #[test]
    fn epoch_safe_read_is_uncounted_under_pin() {
        let arena = small_epoch_arena(4);
        let root: Link<TestNode> = Link::null();
        let p = arena.alloc().unwrap();
        unsafe { arena.store_link(&root, p) }; // alloc ref + root link = 2
        {
            let _g = arena.pin();
            unsafe {
                let q = arena.safe_read(&root);
                assert_eq!(p, q);
                assert_eq!((*q).header().refcount(), 2, "pinned read adds no count");
                arena.protect_dup(q); // process-ref ops are no-ops...
                assert_eq!((*q).header().refcount(), 2);
                arena.unprotect(q); // ...in both directions
                assert_eq!((*q).header().refcount(), 2);
            }
        }
        unsafe {
            arena.release(p); // the alloc reference; the root link remains
            assert_eq!((*p).header().refcount(), 1);
            let last = root.swap(std::ptr::null_mut());
            arena.release(last); // link count hits zero: retire
        }
        assert_eq!(arena.stats().epoch_retires, 1);
        assert_eq!(arena.live_nodes(), 1, "retired but not yet recycled");
        let mut freed = 0;
        for _ in 0..4 {
            freed += arena.advance_and_collect();
        }
        assert_eq!(freed, 1);
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn stalled_pin_surfaces_as_reclaim_pressure() {
        let arena = small_epoch_arena(2);
        let guard = arena.pin(); // a stalled reader pinned at the current epoch
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        unsafe {
            arena.release(a);
            arena.release(b);
        }
        // The stalled pin blocks the second advance, so the grace period
        // can never elapse: the capped pool must report exhaustion...
        assert_eq!(arena.alloc(), Err(AllocError));
        // ...and the stats must say why.
        let s = arena.stats();
        assert_eq!(s.epoch_limbo_depth, 2, "reclaimable memory stuck in limbo");
        assert!(
            s.epoch_pin_lag >= 1,
            "a pinned thread lags the global epoch"
        );
        drop(guard);
        // Unpinned: pressure collection can finish the grace period.
        let p = arena.alloc().expect("limbo ages out once the pin drops");
        assert_eq!(arena.stats().epoch_pin_lag, 0);
        unsafe { arena.release(p) };
    }

    #[test]
    fn epoch_drop_with_pending_limbo_is_clean() {
        let arena = small_epoch_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        unsafe {
            arena.store_link(&(*a).next, b); // a's link counts b
            arena.release(b);
            arena.release(a); // retires a (b stays counted by a's link)
        }
        assert!(arena.stats().epoch_limbo_depth >= 1);
        // Drop with limbo non-empty: the arena's Drop backstop must drain
        // payloads/links without double-freeing (Miri/asan would object).
        drop(arena);
    }

    #[test]
    fn epoch_pinned_reads_survive_concurrent_unlink() {
        let arena: Arc<Arena<TestNode, Epoch>> = Arc::new(Arena::with_config(
            ArenaConfig::new().initial_capacity(64).max_nodes(256),
        ));
        let root: Arc<Link<TestNode>> = Arc::new(Link::null());
        let init = arena.alloc().unwrap();
        unsafe {
            arena.store_link(&root, init);
            arena.release(init);
        }

        std::thread::scope(|s| {
            let writer = {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        // Retry: the capped pool transiently exhausts while
                        // concurrent pins hold grace periods open.
                        let n = loop {
                            match arena.alloc() {
                                Ok(n) => break n,
                                Err(AllocError) => std::thread::yield_now(),
                            }
                        };
                        unsafe {
                            (*n).value.store(i, Ordering::Relaxed);
                            let g = arena.pin();
                            loop {
                                let old = arena.safe_read(&root);
                                let ok = arena.swing(&root, old, n);
                                arena.unprotect(old);
                                if ok {
                                    break;
                                }
                            }
                            drop(g);
                            arena.release(n); // the alloc reference
                        }
                    }
                })
            };
            for _ in 0..2 {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        unsafe {
                            let _g = arena.pin();
                            let p = arena.safe_read(&root);
                            if !p.is_null() {
                                // Reading the payload of a pinned node must
                                // always be coherent, even mid-retirement.
                                let _ = (*p).value.load(Ordering::Relaxed);
                                arena.unprotect(p);
                            }
                        }
                    }
                });
            }
            writer.join().unwrap();
        });

        unsafe {
            let g = arena.pin();
            let last = arena.safe_read(&root);
            assert!(arena.swing(&root, last, std::ptr::null_mut()));
            arena.unprotect(last);
            drop(g);
        }
        // With no pins left, bounded advancing must drain all limbo garbage.
        for _ in 0..8 {
            if arena.live_nodes() == 0 {
                break;
            }
            arena.advance_and_collect();
        }
        assert_eq!(arena.live_nodes(), 0, "all garbage ages out once unpinned");
        arena.for_each_node(|p| unsafe {
            assert_eq!(
                (*p).header().refcount(),
                1,
                "free node holds only the list count"
            );
            assert!((*p).header().claim_is_set());
        });
    }
}
