//! The type-stable node arena and the §5 protocol operations.
//!
//! One [`Arena`] backs one concurrent data structure (or one size class, in
//! the paper's terms — §5.2 notes "free cells must all be of the same
//! size"). The arena owns every node for the structure's lifetime:
//! segments are allocated as the free list runs dry and are only freed when
//! the arena is dropped. This *type stability* is what makes the protocol's
//! transient touches of recycled nodes memory-safe (see crate docs).
//!
//! | Paper figure | Method |
//! |---|---|
//! | Fig. 15 `SafeRead`  | [`Arena::safe_read`] / [`Arena::safe_read_tallied`] |
//! | Fig. 16 `Release`   | [`Arena::release`] (batched: [`Arena::release_deferred`]) |
//! | Fig. 17 `Alloc`     | [`Arena::alloc`] |
//! | Fig. 18 `Reclaim`   | internal `push_free` (invoked by the claim winner inside `release`) |
//!
//! On top of the paper's global lock-free free list the arena layers
//! per-thread **magazines** (see [`crate::magazine`]): bounded node stacks
//! that absorb most `Alloc`/`Reclaim` traffic without touching the shared
//! `free_head` word, refilled and flushed in batches. The global list
//! remains the fallback on slot contention and the rendezvous for pool
//! pressure ([`Arena::flush_thread_caches`] / the internal scavenge), so
//! `AllocError` semantics for capped pools are preserved.

use std::error::Error;
use std::fmt;
use valois_sync::shim::sync::Mutex;

use valois_sync::pad::CachePadded;

use crate::defer::{DeferredReleases, DEFER_CAP};
use crate::magazine::{MagazineGuard, MagazineSlot, MAGAZINE_CAP, MAG_SLOTS, REFILL_BATCH};
use crate::managed::{Link, Managed};
use crate::stats::{MemStats, MemTally, StatCounters};

/// Configuration for an [`Arena`].
///
/// The paper assumes a preallocated pool of cells; [`ArenaConfig::max_nodes`]
/// recovers that model (alloc fails when the pool is exhausted), while the
/// default allows growth by doubling, which is an engineering convenience
/// outside the paper's model (growth takes a mutex, but only on the cold
/// path; `Alloc` itself stays lock-free whenever the free list is non-empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Nodes allocated up front. Default 1024.
    pub initial_capacity: usize,
    /// Hard cap on total nodes; `None` (default) grows without bound.
    pub max_nodes: Option<usize>,
}

impl ArenaConfig {
    /// Default configuration (1024 preallocated nodes, unbounded growth).
    pub fn new() -> Self {
        Self {
            initial_capacity: 1024,
            max_nodes: None,
        }
    }

    /// Sets the initial capacity.
    pub fn initial_capacity(mut self, nodes: usize) -> Self {
        self.initial_capacity = nodes.max(1);
        self
    }

    /// Sets a hard pool limit (the paper's fixed-pool model).
    pub fn max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(nodes.max(1));
        self
    }
}

impl Default for ArenaConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Allocation failure: the pool hit [`ArenaConfig::max_nodes`] with no free
/// cells available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError;

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("node pool exhausted")
    }
}

impl Error for AllocError {}

/// A type-stable segmented pool of `N` nodes with the §5 reference-counting
/// protocol.
///
/// See the crate-level documentation for the counting invariant. All
/// pointer-returning methods hand out *counted* references; every such
/// pointer must eventually be passed to exactly one [`Arena::release`]
/// (possibly by way of [`Arena::release_deferred`]).
pub struct Arena<N: Managed> {
    /// Segment storage. Boxed slices never move, so node addresses are
    /// stable; the mutex is taken only to grow or enumerate.
    segments: Mutex<Vec<Box<[N]>>>,
    /// Head of the lock-free free list (a counted root: its current value
    /// contributes 1 to that node's count).
    free_head: CachePadded<Link<N>>,
    /// Per-thread free-node magazines (see [`crate::magazine`]): each slot
    /// is a bounded stack of free nodes in ordinary free-list state.
    slots: Box<[CachePadded<MagazineSlot<N>>]>,
    /// Grow serialization (kept out of `segments` so enumeration does not
    /// block growth decisions).
    grow_lock: Mutex<()>,
    counters: StatCounters,
    total_nodes: valois_sync::shim::atomic::AtomicUsize,
    max_nodes: Option<usize>,
}

impl<N: Managed + Default> Arena<N> {
    /// Creates an arena with `config`, preallocating the initial segment.
    pub fn with_config(config: ArenaConfig) -> Self {
        let arena = Self {
            segments: Mutex::new(Vec::new()),
            free_head: CachePadded::new(Link::null()),
            slots: (0..MAG_SLOTS)
                .map(|_| CachePadded::new(MagazineSlot::default()))
                .collect(),
            grow_lock: Mutex::new(()),
            counters: StatCounters::default(),
            total_nodes: valois_sync::shim::atomic::AtomicUsize::new(0),
            max_nodes: config.max_nodes,
        };
        let initial = match config.max_nodes {
            Some(max) => config.initial_capacity.min(max),
            None => config.initial_capacity,
        };
        arena.add_segment(initial.max(1));
        arena
    }

    /// Creates an arena with the default configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Allocates one segment of `count` default-constructed nodes and
    /// splices them onto the global free list as one pre-linked chain —
    /// a single CAS instead of `count` pushes on the shared head.
    fn add_segment(&self, count: usize) {
        let segment: Box<[N]> = (0..count).map(|_| N::default()).collect();
        let mut chain_head: *mut N = std::ptr::null_mut();
        let chain_tail = segment[0].free_link() as *const Link<N>; // first linked = chain tail
        let _ = chain_tail;
        let mut tail: *mut N = std::ptr::null_mut();
        for node in segment.iter() {
            let p = node as *const N as *mut N;
            // SAFETY: the segment is freshly boxed and still private to
            // this call. Fresh nodes are born detached (count 0, claim
            // set); install the free structure's incoming-pointer count,
            // then chain.
            unsafe {
                (*p).header().incr_ref();
                (*p).free_link().write(chain_head);
            }
            if tail.is_null() {
                tail = p;
            }
            chain_head = p;
        }
        self.splice_free_global(chain_head, tail);
        self.total_nodes
            .fetch_add(count, valois_sync::shim::atomic::Ordering::Relaxed);
        self.segments.lock().unwrap().push(segment);
        self.counters.bump(|s| &s.grows);
    }

    /// Grows the pool if permitted. Returns `false` when at `max_nodes`.
    fn try_grow(&self) -> bool {
        let _g = self.grow_lock.lock().unwrap();
        // Re-check after acquiring: another thread may have grown (or
        // released nodes) while we waited.
        if !self.free_head.read().is_null() {
            return true;
        }
        let current = self
            .total_nodes
            .load(valois_sync::shim::atomic::Ordering::Relaxed);
        let want = current.max(1); // double
        let want = match self.max_nodes {
            Some(max) if current >= max => return false,
            Some(max) => want.min(max - current),
            None => want,
        };
        self.add_segment(want);
        true
    }

    /// The paper's `Alloc` (Fig. 17): pops a free cell, re-initializes it,
    /// and returns it with one counted reference (the caller's).
    ///
    /// Fast path: the current thread's magazine — plain uncontended
    /// loads/stores, zero shared RMWs. An empty magazine refills from the
    /// global list in one batch; a *busy* magazine slot (another thread
    /// hashed to it) falls through to the global lock-free pop, so `Alloc`
    /// never blocks. An empty global list triggers a (mutex-guarded)
    /// growth attempt, then a scavenge of every magazine, before the pool
    /// is declared exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the pool is exhausted and capped.
    pub fn alloc(&self) -> Result<*mut N, AllocError> {
        let mut tally = MemTally::new();
        let result = self.alloc_inner(&mut tally);
        self.counters.absorb(&mut tally);
        result
    }

    fn alloc_inner(&self, tally: &mut MemTally) -> Result<*mut N, AllocError> {
        loop {
            if let Some(mut mag) = self.slot().try_lock() {
                let popped = mag.pop().or_else(|| self.refill_and_pop(&mut mag, tally));
                if let Some(p) = popped {
                    drop(mag);
                    return Ok(self.finish_alloc(p));
                }
            } else if let Some(p) = self.pop_free_global(tally) {
                // Slot contended: straight to the global Fig. 17 path
                // rather than waiting on the try-lock.
                return Ok(self.finish_alloc(p));
            }
            // Global list empty. Grow if permitted; otherwise pull back
            // nodes parked in other threads' magazines. Only when neither
            // yields anything is the pool truly exhausted.
            if !self.try_grow() && self.scavenge() == 0 {
                return Err(AllocError);
            }
        }
    }

    /// Fig. 17 lines 7-8 plus bookkeeping: the caller owns `p` (one
    /// counted reference, claim still set from its free life).
    fn finish_alloc(&self, p: *mut N) -> *mut N {
        self.counters.bump(|s| &s.allocs);
        valois_trace::probe!(Alloc, p as usize);
        // SAFETY: `p` was just popped off a free structure with its claim
        // still set — the caller is its sole owner until it is published.
        unsafe {
            debug_assert!((*p).header().claim_is_set(), "free node must be claimed");
            debug_assert!((*p).header().refcount() >= 1, "caller's count must exist");
            (*p).reset_for_alloc();
            // Fig. 17 line 8: Write(q^.claim, 0) — the single point where
            // claim is cleared, while we are sole owner.
            (*p).header().clear_claim();
        }
        p
    }

    /// Pops from the global free list (the paper's Fig. 17 lines 1-6) and
    /// pushes up to [`REFILL_BATCH`]` - 1` more nodes into the held
    /// magazine, amortizing the shared-head traffic over the magazine's
    /// subsequent private pops. Returns the caller's node.
    fn refill_and_pop(
        &self,
        mag: &mut MagazineGuard<'_, N>,
        tally: &mut MemTally,
    ) -> Option<*mut N> {
        let first = self.pop_free_global(tally)?;
        let mut refilled = 0u64;
        for _ in 1..REFILL_BATCH {
            match self.pop_free_global(tally) {
                Some(p) => {
                    mag.push(p);
                    refilled += 1;
                }
                None => break,
            }
        }
        valois_trace::probe!(MagRefill, refilled);
        Some(first)
    }

    /// Fig. 17 lines 1-6: SafeRead the head, CAS it to its successor.
    /// Returns a node carrying one counted reference (ours), claim set,
    /// `free_link` stale (its count was transferred to the head root).
    fn pop_free_global(&self, tally: &mut MemTally) -> Option<*mut N> {
        // WAIT-FREE: a failed CSW means another allocator popped the head
        // (or a reclaimer pushed one) — system-wide progress every retry.
        loop {
            // Fig. 17 line 1: q <- SafeRead(Freelist).
            // SAFETY: the free-list head is a counted root, so SafeRead's
            // contract holds.
            let q = unsafe { self.safe_read_tallied(&self.free_head, tally) };
            if q.is_null() {
                return None;
            }
            // SAFETY: our counted reference keeps `q` from being recycled,
            // so its free link is stable while `q` remains the head.
            let next = unsafe { (*q).free_link().read() };
            // Fig. 17 line 4: CSW(Freelist, q, q^.next).
            if self.free_head.compare_and_swap(q, next) {
                // Count transfer: the root's count on `q` dies (released
                // below — we keep our SafeRead count as the allocation
                // reference); the root now counts `next`, which
                // simultaneously lost the count held by `q`'s free link
                // (net zero for `next`).
                // SAFETY: releasing the root's dead count on `q`, exactly
                // once, on the arena that owns it.
                unsafe { self.release_into(q, tally) };
                return Some(q);
            }
            // Fig. 17 lines 5-6: lost the race; drop protection and retry.
            // SAFETY: releasing the SafeRead count acquired above.
            unsafe { self.release_into(q, tally) };
            self.counters.bump(|s| &s.alloc_retries);
        }
    }
}

impl<N: Managed + Default> Default for Arena<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Managed> Arena<N> {
    /// The current thread's magazine slot (threads may collide; the slot
    /// try-lock keeps collisions safe, the global path keeps them
    /// non-blocking).
    #[inline]
    fn slot(&self) -> &MagazineSlot<N> {
        &self.slots[valois_sync::sharded::thread_index() & (MAG_SLOTS - 1)]
    }

    /// The paper's `SafeRead` (Fig. 15): atomically reads the counted link
    /// `src` and acquires a counted reference on the target.
    ///
    /// Returns null if the link is null. A non-null result must eventually
    /// be passed to exactly one [`Arena::release`].
    ///
    /// # Safety
    ///
    /// `src` must be a *counted link of this arena*: a location whose
    /// non-null values are always addresses of this arena's nodes and whose
    /// current value always contributes 1 to its target's count (a structure
    /// root, or a field of a node the caller holds a counted reference on).
    pub unsafe fn safe_read(&self, src: &Link<N>) -> *mut N {
        let mut tally = MemTally::new();
        let q = self.safe_read_tallied(src, &mut tally);
        self.counters.absorb(&mut tally);
        q
    }

    /// [`Arena::safe_read`] with the statistics recorded into a caller
    /// tally instead of the shared counters — the hot-path variant for
    /// loops that perform many reads before flushing once (see
    /// [`MemTally`] and [`Arena::flush_tally`]).
    ///
    /// # Safety
    ///
    /// As [`Arena::safe_read`].
    pub unsafe fn safe_read_tallied(&self, src: &Link<N>, tally: &mut MemTally) -> *mut N {
        loop {
            // Fig. 15 line 1: q <- Read(p).
            let q = src.read();
            if q.is_null() {
                return std::ptr::null_mut();
            }
            // Fig. 15 line 4: Increment(q^.refct). `q` may be stale — even
            // recycled — but it is always a valid node of this type-stable
            // arena, so the increment is memory-safe; the re-read below
            // rejects stale protections and `release` undoes the count.
            let prev = (*q).header().incr_ref();
            // Fig. 15 line 5: still current? Then our count was acquired
            // while `src` held a (counted) pointer to `q`, so `q` was live.
            if src.read() == q {
                tally.safe_reads += 1;
                valois_trace::probe!(SafeRead, q as usize, prev);
                return q;
            }
            // Fig. 15 lines 7-8.
            self.release_into(q, tally);
            tally.safe_read_retries += 1;
        }
    }

    /// Duplicates a counted reference the caller already holds (used when a
    /// held pointer is copied into a second long-lived location, e.g. a
    /// cursor field or a fresh node's link).
    ///
    /// # Safety
    ///
    /// The caller must hold a counted reference on non-null `p` (so it
    /// cannot be concurrently recycled).
    // GUARD: p — caller holds a counted reference for the call's duration.
    pub unsafe fn incr_ref(&self, p: *mut N) {
        if !p.is_null() {
            (*p).header().incr_ref();
        }
    }

    /// The paper's `Release` (Fig. 16): gives up one counted reference.
    /// If the count reaches zero, wins the `claim` arbitration and reclaims
    /// the node — draining its outgoing counted links (whose targets are
    /// released in turn, iteratively) and pushing it onto the free list.
    ///
    /// Null pointers are ignored (the paper's algorithms release cursor
    /// fields that may be NULL, e.g. `First` line 3 / `Update` line 5).
    ///
    /// # Safety
    ///
    /// Non-null `p` must be a counted reference obtained from this arena
    /// (`safe_read`/`incr_ref`/`alloc` or a drained link), released exactly
    /// once.
    // GUARD: p — caller holds the count being given up; `p`'s protection
    // window closes at this call.
    pub unsafe fn release(&self, p: *mut N) {
        if p.is_null() {
            return;
        }
        let mut tally = MemTally::new();
        self.release_into(p, &mut tally);
        self.counters.absorb(&mut tally);
    }

    /// Fig. 16, recording statistics into `tally` (shared by the batched
    /// paths so a whole drain flushes once).
    ///
    /// # Safety
    ///
    /// As [`Arena::release`], except `p` must be non-null.
    // GUARD: p — as `release`: the caller's count is consumed here.
    unsafe fn release_into(&self, p: *mut N, tally: &mut MemTally) {
        // The common case releases one node and touches nothing else; the
        // worklist is only needed when a reclamation cascades through the
        // dying node's outgoing links (e.g. a chain of deleted cells).
        let mut worklist: Vec<*mut N> = Vec::new();
        let mut current = p;
        // WAIT-FREE: one iteration per released reference in the dying
        // subgraph — no CAS retries (`try_claim` is one-shot per node).
        loop {
            tally.releases += 1;
            // Fig. 16 line 1: c <- Fetch&Add(p^.refct, -1).
            let prev = (*current).header().decr_ref();
            valois_trace::probe!(Release, current as usize, prev);
            if prev == 1 {
                // Count hit zero: Fig. 16 lines 4-7 — claim arbitration,
                // with the Michael & Scott correction: the claim CAS
                // requires the count to *still* be zero, so a claim
                // attempt delayed past a recycling of this node fails
                // instead of freeing the new allocation (see
                // `NodeHeader::try_claim` and `RefClaim`).
                if (*current).header().try_claim() {
                    // We are the unique reclaimer. No process or link
                    // references remain, so reading/draining fields is
                    // exclusive.
                    let links = (*current).drain_links();
                    for target in links.iter() {
                        worklist.push(target);
                    }
                    tally.reclaims += 1;
                    self.push_free(current);
                }
            }
            match worklist.pop() {
                Some(next) => current = next,
                None => return,
            }
        }
    }

    /// Parks a counted reference in `defer` instead of releasing it now;
    /// drains the whole buffer through ordinary [`Arena::release`]s when
    /// it is full. Deferral can only *delay* a count reaching zero —
    /// reclamation is postponed, never anticipated — so it is safe
    /// wherever `release` is (see [`crate::defer`]).
    ///
    /// # Safety
    ///
    /// As [`Arena::release`]; additionally, `defer` must be drained via
    /// [`Arena::drain_deferred`] on **this** arena before it is dropped
    /// (the parked pointers are this arena's counted references).
    // GUARD: p — caller holds the count being parked; it stays live (deref
    // remains legal) until the buffer is drained.
    pub unsafe fn release_deferred(&self, defer: &mut DeferredReleases<N>, p: *mut N) {
        if p.is_null() {
            return;
        }
        if defer.len == DEFER_CAP {
            self.drain_deferred(defer);
        }
        defer.buf[defer.len] = p;
        defer.len += 1;
    }

    /// Releases every reference parked in `defer` (Fig. 16 each), sharing
    /// one statistics flush across the batch.
    ///
    /// # Safety
    ///
    /// `defer`'s parked pointers must be counted references of this arena
    /// (they are, if they were parked by [`Arena::release_deferred`] on
    /// this arena).
    pub unsafe fn drain_deferred(&self, defer: &mut DeferredReleases<N>) {
        if defer.len == 0 {
            return;
        }
        valois_trace::probe!(DeferFlush, defer.len);
        let mut tally = MemTally::new();
        for i in 0..defer.len {
            self.release_into(defer.buf[i], &mut tally);
        }
        defer.len = 0;
        self.counters.absorb(&mut tally);
    }

    /// Folds a [`MemTally`] filled by [`Arena::safe_read_tallied`] into
    /// the shared counters and clears it. Call when the batching loop ends
    /// (the list cursor calls it on drop).
    pub fn flush_tally(&self, tally: &mut MemTally) {
        if !tally.is_empty() {
            self.counters.absorb(tally);
        }
    }

    /// The paper's `Reclaim` (Fig. 18): returns a claimed, drained node to
    /// the free structure. Fast path: the current thread's magazine (no
    /// shared RMW); a busy slot falls back to the global Treiber push, and
    /// an over-full magazine flushes half of itself to the global list in
    /// one splice.
    fn push_free(&self, p: *mut N) {
        valois_trace::probe!(Reclaim, p as usize);
        // The free structure's incoming pointer is a counted reference:
        // *add* 1 (never store — a store would erase a concurrent transient
        // SafeRead increment; see crate docs "corrections").
        // SAFETY: the caller is the unique reclaimer (claim held), so `p`
        // is a valid, unpublished node of this arena.
        unsafe {
            (*p).header().incr_ref();
        }
        if let Some(mut mag) = self.slot().try_lock() {
            mag.push(p);
            let len = mag.len();
            if len > MAGAZINE_CAP {
                if let Some((h, t, taken)) = mag.take_chain(len - MAGAZINE_CAP / 2) {
                    self.splice_free_global(h, t);
                    valois_trace::probe!(MagFlush, taken);
                }
            }
            return;
        }
        self.push_free_global(p);
    }

    /// Fig. 18 proper: Treiber push of one node already carrying its
    /// free-structure count.
    fn push_free_global(&self, p: *mut N) {
        // WAIT-FREE: a failed CAS means another push or pop moved the head
        // — system-wide progress every retry.
        loop {
            // Fig. 18 lines 1-3. Plain read (not SafeRead): we never
            // dereference the old head, so a stale value only costs a CAS
            // retry, and head-recycling ABA is harmless because re-linking
            // the *current* head is exactly what push wants.
            let head = self.free_head.read();
            // SAFETY: `p` is unpublished (ours alone) until the CAS below.
            unsafe {
                (*p).free_link().write(head);
            }
            if self.free_head.compare_and_swap(head, p) {
                // Count transfer: root's count on `head` moves to
                // `p.free_link`; root now counts `p`.
                break;
            }
        }
    }

    /// Splices a pre-linked chain of free nodes (each internally counted,
    /// `chain_head` carrying the one loose count) onto the global list
    /// with a single CAS. The chain tail's `free_link` is overwritten with
    /// the old head *before* the CAS publishes it, so its stale value is
    /// never observable.
    fn splice_free_global(&self, chain_head: *mut N, chain_tail: *mut N) {
        // WAIT-FREE: a failed CAS means another push or pop moved the head
        // — system-wide progress every retry.
        loop {
            let head = self.free_head.read();
            // SAFETY: the chain is private until the CAS below publishes it.
            unsafe {
                (*chain_tail).free_link().write(head);
            }
            if self.free_head.compare_and_swap(head, chain_head) {
                // Count transfer: root's count on `head` moves to
                // `chain_tail.free_link`; root now counts `chain_head`.
                break;
            }
        }
    }

    /// Flushes every magazine it can lock back to the global free list.
    /// Returns the number of nodes moved. Called on pool pressure before
    /// reporting [`AllocError`]; slots busy at that instant are skipped
    /// (their owner is mid-operation and will see the pressure itself).
    fn scavenge(&self) -> usize {
        let mut moved = 0;
        for slot in self.slots.iter() {
            if let Some(mut mag) = slot.try_lock() {
                let len = mag.len();
                if let Some((h, t, taken)) = mag.take_chain(len) {
                    self.splice_free_global(h, t);
                    valois_trace::probe!(MagFlush, taken);
                    moved += taken;
                }
            }
        }
        moved
    }

    /// Flushes every thread magazine back to the global free list and
    /// returns the number of nodes moved. Quiescence/teardown hook: after
    /// this (with no concurrent operations), every free node is reachable
    /// from the global free head.
    pub fn flush_thread_caches(&self) -> usize {
        self.scavenge()
    }

    /// Counted-link CAS swing with automatic count transfer.
    ///
    /// Increments `new`'s count (the prospective link), attempts
    /// `CAS(loc, old, new)`, and on success releases `old` (the count the
    /// link held); on failure the increment is undone. Returns the CAS
    /// outcome, which is the paper's "cursor became invalid" retry signal.
    ///
    /// # Safety
    ///
    /// `loc` must be a counted link of this arena; the caller must hold
    /// counted references on non-null `old` and `new` (this is what makes
    /// the CAS ABA-free: `old` cannot be recycled while protected).
    // GUARD: old, new — caller holds a count on each; the caller's counts
    // survive the call (only the link's own count moves).
    pub unsafe fn swing(&self, loc: &Link<N>, old: *mut N, new: *mut N) -> bool {
        self.counters.bump(|s| &s.swings);
        self.incr_ref(new);
        if loc.compare_and_swap(old, new) {
            self.release(old);
            true
        } else {
            self.release(new);
            self.counters.bump(|s| &s.swing_failures);
            false
        }
    }

    /// Initializing store into a link of an *unpublished* node (fresh from
    /// [`Arena::alloc`], not yet reachable by other processes): installs
    /// `new` with a count, releasing whatever the link previously counted
    /// (non-null only when a retry loop re-targets a prepared node, e.g.
    /// `TryInsert` rewriting `a^.next` after an invalid cursor).
    ///
    /// # Safety
    ///
    /// The node owning `loc` must be unpublished (exclusively owned);
    /// the caller must hold a counted reference on non-null `new`.
    // GUARD: new — caller holds a count on `new`; the link takes its own.
    pub unsafe fn store_link(&self, loc: &Link<N>, new: *mut N) {
        self.incr_ref(new);
        let old = loc.swap(new);
        self.release(old);
    }

    /// Returns a *detached* node to the free list: count zero and `claim`
    /// already won by the caller. This is the hook for owners' quiescent
    /// cycle collection (back-link cycles among simultaneously deleted
    /// cells are unreachable garbage that plain counting cannot free; see
    /// DESIGN.md §1 note 3).
    ///
    /// # Safety
    ///
    /// The caller must have exclusive ownership of `p` (won its claim, all
    /// counted links drained, count zero) and guarantee no concurrent
    /// protocol activity can reach `p`.
    // GUARD: p — caller owns `p` exclusively; nothing else can free it
    // during the call.
    pub unsafe fn reclaim_detached(&self, p: *mut N) {
        debug_assert_eq!((*p).header().refcount(), 0);
        debug_assert!((*p).header().claim_is_set());
        self.counters.bump(|s| &s.reclaims);
        self.push_free(p);
    }

    /// Snapshot of the protocol counters.
    ///
    /// Hot paths batch events thread-locally ([`MemTally`]); counts parked
    /// in un-flushed tallies (e.g. a still-live cursor's) are not yet
    /// visible here.
    pub fn stats(&self) -> MemStats {
        self.counters.snapshot()
    }

    /// Total nodes owned by the arena (free + live).
    pub fn capacity(&self) -> usize {
        self.total_nodes
            .load(valois_sync::shim::atomic::Ordering::Relaxed)
    }

    /// Nodes currently allocated (checked out and not yet reclaimed).
    pub fn live_nodes(&self) -> u64 {
        self.stats().live_nodes()
    }

    /// Visits the address of every node the arena owns (free or live).
    ///
    /// Safe in itself — the callback receives raw addresses and headers may
    /// be inspected through atomics at any time — but dereferencing payload
    /// fields requires the caller to guarantee quiescence (e.g. the
    /// structure's `&mut self` drop/collect paths).
    pub fn for_each_node(&self, mut f: impl FnMut(*mut N)) {
        let segments = self.segments.lock().unwrap();
        for segment in segments.iter() {
            for node in segment.iter() {
                f(node as *const N as *mut N);
            }
        }
    }
}

impl<N: Managed> fmt::Debug for Arena<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.capacity())
            .field("live_nodes", &self.live_nodes())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managed::{NodeHeader, ReclaimedLinks};
    use std::sync::Arc;
    use valois_sync::shim::atomic::{AtomicU64, Ordering};

    /// Minimal managed node: one value slot and two counted links, mirroring
    /// the list's cell shape.
    #[derive(Default)]
    struct TestNode {
        header: NodeHeader,
        next: Link<TestNode>,
        back: Link<TestNode>,
        value: AtomicU64,
    }

    impl Managed for TestNode {
        fn header(&self) -> &NodeHeader {
            &self.header
        }

        fn free_link(&self) -> &Link<Self> {
            &self.next
        }

        fn drain_links(&self) -> ReclaimedLinks<Self> {
            let mut links = ReclaimedLinks::new();
            links.push(self.next.swap(std::ptr::null_mut()));
            links.push(self.back.swap(std::ptr::null_mut()));
            links
        }

        fn reset_for_alloc(&self) {
            // next held the free-list link whose count was transferred to
            // the free-list head at pop: null it without releasing.
            self.next.write(std::ptr::null_mut());
            self.back.write(std::ptr::null_mut());
            self.value.store(0, Ordering::Relaxed);
        }
    }

    fn small_arena(cap: usize) -> Arena<TestNode> {
        Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap))
    }

    #[test]
    fn alloc_returns_reset_node_with_one_reference() {
        let arena = small_arena(4);
        let p = arena.alloc().unwrap();
        unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!(!(*p).header().claim_is_set());
            assert!((*p).next.read().is_null());
        }
        unsafe { arena.release(p) };
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn release_reclaims_and_node_is_reusable() {
        let arena = small_arena(1);
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        let q = arena.alloc().unwrap();
        assert_eq!(p, q, "single-node pool must recycle the same node");
        unsafe { arena.release(q) };
    }

    #[test]
    fn exhaustion_reports_alloc_error() {
        let arena = small_arena(2);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        assert_eq!(arena.alloc(), Err(AllocError));
        unsafe {
            arena.release(a);
            arena.release(b);
        }
        assert!(arena.alloc().is_ok(), "released node must be allocatable");
    }

    #[test]
    fn uncapped_arena_grows_by_doubling() {
        let arena: Arena<TestNode> = Arena::with_config(ArenaConfig::new().initial_capacity(2));
        let mut held = Vec::new();
        for _ in 0..10 {
            held.push(arena.alloc().unwrap());
        }
        assert!(arena.capacity() >= 10);
        assert!(arena.stats().grows >= 2);
        for p in held {
            unsafe { arena.release(p) };
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn drained_links_release_targets_transitively() {
        let arena = small_arena(8);
        // Build a -> b -> c via counted links, then drop all process refs:
        // releasing `a` must cascade and reclaim all three.
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        unsafe {
            (*b).next.write(c); // b's link now counts c: transfer our process ref
            (*a).next.write(b); // a's link now counts b
                                // (we transferred our alloc references into the links, so no
                                // incr_ref: each node's count is exactly 1, held by its parent.)
            assert_eq!((*c).header().refcount(), 1);
            arena.release(a);
        }
        assert_eq!(arena.live_nodes(), 0, "cascade must reclaim a, b, c");
        // All three must be allocatable again.
        let mut got = std::collections::HashSet::new();
        for _ in 0..3 {
            got.insert(arena.alloc().unwrap() as usize);
        }
        assert!(got.contains(&(a as usize)));
        assert!(got.contains(&(b as usize)));
        assert!(got.contains(&(c as usize)));
    }

    #[test]
    fn safe_read_protects_against_concurrent_unlink() {
        let arena = Arc::new(small_arena(64));
        // A root link that one thread repeatedly re-targets while others
        // safe_read through it; counts must stay exact.
        let root: Arc<Link<TestNode>> = Arc::new(Link::null());
        let init = arena.alloc().unwrap();
        unsafe { arena.store_link(&root, init) };
        unsafe { arena.release(init) };

        std::thread::scope(|s| {
            let writer = {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        let n = arena.alloc().unwrap();
                        unsafe {
                            (*n).value.store(i, Ordering::Relaxed);
                            // Publish: swing root from whatever it held.
                            loop {
                                let old = arena.safe_read(&root);
                                let ok = arena.swing(&root, old, n);
                                arena.release(old);
                                if ok {
                                    break;
                                }
                            }
                            arena.release(n);
                        }
                    }
                })
            };
            for _ in 0..3 {
                let arena = Arc::clone(&arena);
                let root = Arc::clone(&root);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        unsafe {
                            let p = arena.safe_read(&root);
                            if !p.is_null() {
                                // Reading the payload of a protected node
                                // must always be coherent.
                                let _ = (*p).value.load(Ordering::Relaxed);
                                arena.release(p);
                            }
                        }
                    }
                });
            }
            writer.join().unwrap();
        });

        // Quiesce: drop the root's node.
        unsafe {
            let last = arena.safe_read(&root);
            assert!(arena.swing(&root, last, std::ptr::null_mut()));
            arena.release(last);
        }
        assert_eq!(arena.live_nodes(), 0, "all nodes reclaimed after quiesce");
        // Every node's count must be exactly its free structure's 1 —
        // whether parked on the global list or in a thread magazine.
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!((*p).header().claim_is_set());
        });
    }

    #[test]
    fn concurrent_alloc_release_conserves_nodes() {
        let arena = Arc::new(small_arena(256));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let arena = Arc::clone(&arena);
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..10_000usize {
                        if i % 3 == 2 {
                            if let Some(p) = held.pop() {
                                unsafe { arena.release(p) };
                            }
                        } else if let Ok(p) = arena.alloc() {
                            held.push(p);
                        }
                        if held.len() > 16 {
                            for p in held.drain(..) {
                                unsafe { arena.release(p) };
                            }
                        }
                    }
                    for p in held {
                        unsafe { arena.release(p) };
                    }
                });
            }
        });
        assert_eq!(arena.live_nodes(), 0);
        let mut free = 0usize;
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1, "free node count must be 1");
            free += 1;
        });
        assert_eq!(free, 256);
    }

    #[test]
    fn concurrent_growth_is_consistent() {
        // Many threads alloc-hold-release against a tiny initial segment:
        // growth must serialize correctly and never duplicate or lose
        // nodes.
        let arena: Arc<Arena<TestNode>> =
            Arc::new(Arena::with_config(ArenaConfig::new().initial_capacity(2)));
        let seen = std::sync::Mutex::new(std::collections::HashSet::<usize>::new());
        // Nobody releases until every thread holds its full batch, so the
        // distinctness check really is over simultaneously-live nodes.
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let arena = Arc::clone(&arena);
                let seen = &seen;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..200 {
                        let p = arena.alloc().expect("uncapped arena grows");
                        held.push(p);
                    }
                    {
                        let mut set = seen.lock().unwrap();
                        for &p in &held {
                            assert!(set.insert(p as usize), "duplicate live node");
                        }
                    }
                    barrier.wait();
                    for p in held {
                        unsafe { arena.release(p) };
                    }
                });
            }
        });
        assert_eq!(
            seen.lock().unwrap().len(),
            800,
            "every allocation distinct while simultaneously held"
        );
        assert!(arena.capacity() >= 800);
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn swing_failure_undoes_count() {
        let arena = small_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        let root: Link<TestNode> = Link::null();
        unsafe {
            arena.store_link(&root, a);
            // CAS expecting `b` must fail and leave counts unchanged.
            let before = (*c).header().refcount();
            assert!(!arena.swing(&root, b, c));
            assert_eq!((*c).header().refcount(), before);
            assert_eq!(root.read(), a);
            // Clean up: unlink a, release all.
            assert!(arena.swing(&root, a, std::ptr::null_mut()));
            arena.release(a);
            arena.release(b);
            arena.release(c);
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn stats_track_traffic() {
        let arena = small_arena(8);
        let base = arena.stats();
        let p = arena.alloc().unwrap();
        unsafe { arena.release(p) };
        let d = arena.stats().since(&base);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.reclaims, 1);
        assert!(d.safe_reads >= 1, "alloc uses SafeRead on the free head");
        assert!(d.releases >= 2, "pop transfer + final release");
    }

    #[test]
    fn config_builders_clamp_to_minimums() {
        let c = ArenaConfig::new().initial_capacity(0).max_nodes(0);
        assert_eq!(c.initial_capacity, 1);
        assert_eq!(c.max_nodes, Some(1));
        assert_eq!(format!("{}", AllocError), "node pool exhausted");
    }

    #[test]
    fn for_each_node_visits_exactly_capacity() {
        let arena = small_arena(17);
        let mut count = 0;
        arena.for_each_node(|_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn store_link_replaces_and_releases_old() {
        let arena = small_arena(4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let fresh = arena.alloc().unwrap();
        unsafe {
            // fresh.next := a (counted), then re-target to b: a's count from
            // the link must drop. store_link itself installs the link count.
            arena.store_link(&(*fresh).next, a);
            assert_eq!((*a).header().refcount(), 2);
            arena.store_link(&(*fresh).next, b);
            assert_eq!((*a).header().refcount(), 1);
            assert_eq!((*b).header().refcount(), 2);
            arena.release(a);
            arena.release(b);
            arena.release(fresh); // drains fresh.next -> releases b
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn magazine_absorbs_alloc_release_cycles_without_global_traffic() {
        // After a warm-up alloc/release, a repeated single-node cycle runs
        // entirely against the thread magazine: the global head is
        // untouched, so alloc_retries stays 0 and (crucially) the same
        // node keeps being recycled.
        let arena = small_arena(8);
        let p0 = arena.alloc().unwrap();
        unsafe { arena.release(p0) };
        for _ in 0..1000 {
            let p = arena.alloc().unwrap();
            assert_eq!(p, p0, "magazine must recycle LIFO");
            unsafe { arena.release(p) };
        }
        let s = arena.stats();
        assert_eq!(s.allocs, 1001);
        assert_eq!(s.reclaims, 1001);
        assert_eq!(s.alloc_retries, 0);
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn flush_thread_caches_empties_magazines() {
        let arena = small_arena(16);
        // Park a few nodes in this thread's magazine.
        let held: Vec<_> = (0..4).map(|_| arena.alloc().unwrap()).collect();
        for p in held {
            unsafe { arena.release(p) };
        }
        let moved = arena.flush_thread_caches();
        assert!(moved >= 4, "magazine held at least the 4 recycled nodes");
        assert_eq!(arena.flush_thread_caches(), 0, "second flush finds nothing");
        // Conservation after the flush: all 16 free, each count 1.
        let mut free = 0;
        arena.for_each_node(|p| unsafe {
            assert_eq!((*p).header().refcount(), 1);
            assert!((*p).header().claim_is_set());
            free += 1;
        });
        assert_eq!(free, 16);
    }

    #[test]
    fn capped_pool_scavenges_magazines_under_pressure() {
        // Fill-and-release so nodes park in this thread's magazine, then
        // demand the whole pool at once: alloc must scavenge the parked
        // nodes back rather than report exhaustion.
        let arena = small_arena(8);
        let held: Vec<_> = (0..8).map(|_| arena.alloc().unwrap()).collect();
        for p in held {
            unsafe { arena.release(p) };
        }
        // All 8 nodes are somewhere between magazine and global list now.
        let again: Vec<_> = (0..8)
            .map(|i| arena.alloc().unwrap_or_else(|e| panic!("alloc {i}: {e}")))
            .collect();
        assert_eq!(arena.alloc(), Err(AllocError), "pool truly exhausted");
        for p in again {
            unsafe { arena.release(p) };
        }
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn deferred_release_delays_but_completes_reclamation() {
        let arena = small_arena(4);
        let mut defer = crate::DeferredReleases::new();
        let p = arena.alloc().unwrap();
        unsafe { arena.release_deferred(&mut defer, p) };
        assert_eq!(defer.len(), 1);
        assert_eq!(
            arena.live_nodes(),
            1,
            "parked reference must keep the node checked out"
        );
        unsafe { arena.drain_deferred(&mut defer) };
        assert!(defer.is_empty());
        assert_eq!(arena.live_nodes(), 0, "drain performs the release");
    }

    #[test]
    fn deferred_release_auto_drains_at_capacity() {
        let cap = crate::DeferredReleases::<TestNode>::CAPACITY;
        let arena = Arena::<TestNode>::with_config(ArenaConfig::new().initial_capacity(cap + 2));
        let mut defer = crate::DeferredReleases::new();
        // Park CAPACITY + 1 references: the overflow push must first drain
        // the full buffer.
        for _ in 0..=cap {
            let p = arena.alloc().unwrap();
            unsafe { arena.release_deferred(&mut defer, p) };
        }
        assert_eq!(defer.len(), 1, "auto-drain leaves only the overflow entry");
        assert_eq!(arena.live_nodes(), 1);
        unsafe { arena.drain_deferred(&mut defer) };
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn tallied_safe_read_defers_stats_until_flush() {
        let arena = small_arena(4);
        let root: Link<TestNode> = Link::null();
        let p = arena.alloc().unwrap();
        unsafe { arena.store_link(&root, p) };
        let base = arena.stats();
        let mut tally = MemTally::new();
        for _ in 0..10 {
            let q = unsafe { arena.safe_read_tallied(&root, &mut tally) };
            unsafe { arena.release(q) };
        }
        assert_eq!(
            arena.stats().since(&base).safe_reads,
            0,
            "tallied reads are invisible before the flush"
        );
        arena.flush_tally(&mut tally);
        assert_eq!(arena.stats().since(&base).safe_reads, 10);
        assert!(tally.is_empty());
        unsafe {
            let q = root.swap(std::ptr::null_mut());
            arena.release(q);
            arena.release(p);
        }
        assert_eq!(arena.live_nodes(), 0);
    }
}
