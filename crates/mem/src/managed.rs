//! The [`Managed`] trait: what a node type must provide for the §5 memory
//! manager to reference-count, reclaim, and recycle it.

use std::fmt;

use valois_sync::primitives::{CasPtr, RefClaim};
use valois_sync::shim::atomic::{AtomicUsize, Ordering};

/// Maximum number of counted outgoing links a node may report at
/// reclamation time. The list's cells have two (`next`, `back_link`); BST
/// cells have up to three (`left`, `right`, `back_link`); skip-list tower
/// cells have two per level (next + back link, up to 12 levels).
pub const MAX_LINKS: usize = 26;

/// A counted pointer field inside a node (`next`, `back_link`, roots).
///
/// This is just the paper's shared pointer word — [`CasPtr`] — renamed to
/// emphasize that *this location's current value contributes 1 to the
/// pointee's reference count*, an invariant maintained by
/// [`Arena::swing`](crate::Arena::swing) and the reclamation drain.
pub type Link<N> = CasPtr<N>;

/// Per-node bookkeeping required by the §5 protocol.
///
/// The paper gives each node a `refct` word (process references + incoming
/// counted links, see crate docs) and a separate `claim` Test&Set used by
/// `Release` (Fig. 16) to pick a single reclaimer among processes that
/// concurrently see the count reach zero. Keeping them in **separate words
/// is unsound**: a releaser can stall between its decrement-to-zero and its
/// `Test&Set`, and by the time it resumes the node may have been reclaimed
/// *and recycled* by others — its late `Test&Set` then sees the clear claim
/// of the new allocation and frees a live node. The model checker finds
/// this interleaving (see `valois-core/tests/loom_models.rs` and
/// [`RefClaim`]); we therefore store both in one word per the Michael &
/// Scott correction, and `Release` acquires the claim with a CAS that
/// requires the count to *still* be zero.
///
/// A freshly constructed header describes a **detached** node: count 0 and
/// claim set. The arena's free-list push then installs the free list's
/// incoming-pointer count (so on-free-list nodes always have count ≥ 1);
/// claim is cleared only by `Alloc` (Fig. 17 line 8).
pub struct NodeHeader {
    state: RefClaim,
    /// Limbo-stack link for the epoch backend (see [`crate::epoch`]).
    /// A dedicated word: `free_link` aliases the node's `next`, which must
    /// stay intact while the node sits in limbo so pinned readers can
    /// still traverse through it. Unused (zero) under the refcount
    /// backend.
    limbo_next: AtomicUsize,
    /// Global epoch observed when the node was retired into limbo
    /// (invariant I12: freed only once `retire_epoch + 2 <= horizon`).
    retire_epoch: AtomicUsize,
}

impl NodeHeader {
    /// Creates a header in the detached pre-free-list state (count 0,
    /// claim set).
    pub fn new_free() -> Self {
        Self {
            state: RefClaim::new_detached(),
            limbo_next: AtomicUsize::new(0),
            retire_epoch: AtomicUsize::new(0),
        }
    }

    /// `Fetch&Add(refct, +1)`: returns the previous count.
    pub fn incr_ref(&self) -> usize {
        self.state.incr_ref()
    }

    /// `Fetch&Add(refct, -1)`: returns the previous count.
    pub fn decr_ref(&self) -> usize {
        self.state.decr_ref()
    }

    /// Corrected claim arbitration (Fig. 16 lines 4-7): succeeds only if
    /// the count is still zero and the claim clear — atomically.
    pub fn try_claim(&self) -> bool {
        self.state.try_claim()
    }

    /// Unconditional claim for quiescent cycle collectors; returns the
    /// previous claim state.
    pub fn set_claim(&self) -> bool {
        self.state.set_claim()
    }

    /// Clears the claim (`Alloc`, Fig. 17 line 8); preserves the count
    /// bits (a stale `SafeRead` may hold a transient increment).
    pub fn clear_claim(&self) {
        self.state.clear_claim()
    }

    /// The current reference count.
    pub fn refcount(&self) -> usize {
        self.state.refcount()
    }

    /// The current claim state.
    pub fn claim_is_set(&self) -> bool {
        self.state.claim_is_set()
    }

    /// The limbo-stack successor (an address, 0 = end). Epoch backend only.
    pub fn limbo_next(&self) -> usize {
        // ORDER: Acquire — pairs with `set_limbo_next`'s publication via
        // the limbo head CAS (the collector walks what retire pushed).
        self.limbo_next.load(Ordering::Acquire)
    }

    /// Sets the limbo-stack successor. Called only by the limbo push/walk
    /// while the caller owns the node's limbo linkage.
    pub fn set_limbo_next(&self, next: usize) {
        // ORDER: Release — published to the collector by the head CAS.
        self.limbo_next.store(next, Ordering::Release);
    }

    /// The epoch this node was retired at (meaningful only in limbo).
    pub fn retire_epoch(&self) -> usize {
        self.retire_epoch.load(Ordering::Acquire)
    }

    /// Stamps the retirement epoch. Called by `EpochDomain::retire` while
    /// the retirer holds the claim.
    pub fn set_retire_epoch(&self, epoch: usize) {
        self.retire_epoch.store(epoch, Ordering::Release);
    }
}

impl Default for NodeHeader {
    fn default() -> Self {
        Self::new_free()
    }
}

impl fmt::Debug for NodeHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHeader")
            .field("refct", &self.refcount())
            .field("claim", &self.claim_is_set())
            .finish()
    }
}

/// Outgoing counted links collected from a node at reclamation time.
///
/// Fixed-capacity so the reclamation path never allocates for the common
/// case; see [`MAX_LINKS`].
pub struct ReclaimedLinks<N> {
    links: [*mut N; MAX_LINKS],
    len: usize,
}

impl<N> ReclaimedLinks<N> {
    /// An empty collection.
    pub fn new() -> Self {
        Self {
            links: [std::ptr::null_mut(); MAX_LINKS],
            len: 0,
        }
    }

    /// Records a drained link target. Null pointers are skipped.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_LINKS`] non-null links are pushed — that
    /// would mean the node type under-declared its link count and the
    /// protocol would leak references.
    pub fn push(&mut self, target: *mut N) {
        if target.is_null() {
            return;
        }
        assert!(
            self.len < MAX_LINKS,
            "node reported more than MAX_LINKS counted links"
        );
        self.links[self.len] = target;
        self.len += 1;
    }

    /// Number of recorded links.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no links were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the recorded targets.
    pub fn iter(&self) -> impl Iterator<Item = *mut N> + '_ {
        self.links[..self.len].iter().copied()
    }
}

impl<N> Default for ReclaimedLinks<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> fmt::Debug for ReclaimedLinks<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReclaimedLinks")
            .field("len", &self.len)
            .finish()
    }
}

/// A node type managed by the [`Arena`](crate::Arena).
///
/// # Safety contract (enforced by convention, checked by tests)
///
/// * [`Managed::header`] must return the same header for the node's entire
///   life.
/// * [`Managed::free_link`] returns the pointer field the free list threads
///   through free nodes. The paper reuses the node's `next` field (Fig. 18
///   line 2 writes `p^.next`); implementations should do the same.
/// * [`Managed::drain_links`] is called exactly once per reclamation, by the
///   claim winner, when the count is zero (no other process can read the
///   node's fields). It must atomically take every *counted* outgoing link,
///   null the fields, drop any payload, and report the old targets so the
///   arena can release them.
/// * [`Managed::reset_for_alloc`] is called by `Alloc` while the allocator
///   is the sole owner, before the node is handed out.
pub trait Managed: Send + Sync {
    /// Reference-count / claim bookkeeping for this node.
    fn header(&self) -> &NodeHeader;

    /// The field the free list uses to chain free nodes.
    fn free_link(&self) -> &Link<Self>
    where
        Self: Sized;

    /// Takes all counted outgoing links and drops any payload; returns the
    /// old link targets for the arena to release.
    fn drain_links(&self) -> ReclaimedLinks<Self>
    where
        Self: Sized;

    /// Re-initializes the node for a fresh life (clear payload slots, null
    /// links). Called with exclusive logical ownership.
    fn reset_for_alloc(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_starts_free() {
        let h = NodeHeader::new_free();
        assert_eq!(h.refcount(), 0);
        assert!(h.claim_is_set());
    }

    #[test]
    fn default_header_matches_new_free() {
        let h = NodeHeader::default();
        assert_eq!(h.refcount(), 0);
        assert!(h.claim_is_set());
    }

    #[test]
    fn reclaimed_links_skips_null() {
        let mut r: ReclaimedLinks<u8> = ReclaimedLinks::new();
        r.push(std::ptr::null_mut());
        assert!(r.is_empty());
        let mut x = 0u8;
        r.push(&mut x);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap(), &mut x as *mut u8);
    }

    #[test]
    #[should_panic(expected = "MAX_LINKS")]
    fn reclaimed_links_overflow_panics() {
        let mut r: ReclaimedLinks<u8> = ReclaimedLinks::new();
        let mut xs = [0u8; MAX_LINKS + 1];
        for x in xs.iter_mut() {
            r.push(x as *mut u8);
        }
    }
}
