//! An append-only two-level segment table: the §5 type-stable premise
//! ("memory used for one type is never reused for another, segments are
//! appended and never unmapped") applied to flat slot storage instead of
//! protocol nodes.
//!
//! A [`SegmentTable`] is a fixed first-level directory of lazily
//! allocated second-level segments. Slots never move once their segment
//! is allocated — `&T` references stay valid for the table's lifetime —
//! and segments are only ever *added*, never freed or reused, until the
//! table itself drops. That is exactly the property a growing hash
//! table's bucket directory needs: doubling the bucket count must not
//! invalidate concurrent readers' references into the directory.
//!
//! Segment sizes are geometric (segment 0 holds `base` slots, segment
//! `k ≥ 1` holds `base << (k-1)`), so a table that doubles its live
//! prefix allocates one new segment per doubling and wastes at most half
//! of the newest segment.

use std::fmt;

use valois_sync::shim::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Append-only, lazily allocated, type-stable slot table (see the
/// module docs).
///
/// # Example
///
/// ```
/// use valois_mem::SegmentTable;
///
/// let table: SegmentTable<u64> = SegmentTable::new(2, 1 << 10);
/// assert!(table.get(5).is_none(), "segments allocate lazily");
/// assert_eq!(*table.get_or_alloc(5), 0);
/// assert!(table.get(5).is_some());
/// ```
pub struct SegmentTable<T> {
    /// Slots in segment 0 (a power of two).
    base: usize,
    /// First-level directory: segment `k` storage, null until allocated.
    /// The directory itself is fixed at construction — there is no
    /// directory-growth race to manage.
    segments: Box<[AtomicPtr<T>]>,
    /// Total slots across all *allocatable* segments.
    capacity: usize,
    /// Segments allocated so far (statistics only).
    allocated: AtomicUsize,
}

// SAFETY: slots are reached only through atomic segment pointers and
// shared references; `T`'s own synchronization governs slot access.
unsafe impl<T: Send + Sync> Send for SegmentTable<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for SegmentTable<T> {}

impl<T> SegmentTable<T> {
    /// A table of up to `capacity` slots, with `base` slots in the first
    /// segment. Both are rounded up to powers of two (minimum 1); the
    /// directory for every possible segment is allocated eagerly (it is
    /// a few machine words per segment), the segments themselves lazily.
    pub fn new(base: usize, capacity: usize) -> Self {
        let base = base.max(1).next_power_of_two();
        let capacity = capacity.max(base).next_power_of_two();
        // base slots in segment 0, then base<<(k-1): capacity c needs
        // 1 + log2(c/base) segments.
        let slots = 1 + (capacity / base).trailing_zeros() as usize;
        let segments = (0..slots)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Self {
            base,
            segments,
            capacity,
            allocated: AtomicUsize::new(0),
        }
    }

    /// Total slots this table can ever hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Segments allocated so far.
    pub fn allocated_segments(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Maps a slot index to `(segment, offset, segment_len)`.
    fn locate(&self, index: usize) -> (usize, usize, usize) {
        if index < self.base {
            return (0, index, self.base);
        }
        // Segment k ≥ 1 covers [base << (k-1), base << k).
        let k = ((index / self.base).ilog2() + 1) as usize;
        let seg_start = self.base << (k - 1);
        (k, index - seg_start, seg_start)
    }

    /// The slot at `index`, or `None` if its segment is not yet
    /// allocated. Never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn get(&self, index: usize) -> Option<&T> {
        assert!(index < self.capacity, "slot index out of capacity");
        let (seg, off, _) = self.locate(index);
        let p = self.segments[seg].load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        // SAFETY: a non-null segment pointer is a published allocation of
        // `segment_len` initialized slots (Release store below pairs with
        // this Acquire load); segments are never freed while the table
        // lives, so the reference is valid for `&self`'s lifetime.
        Some(unsafe { &*p.add(off) })
    }

    /// The slot at `index`, allocating its segment (filled with
    /// `T::default()`) if needed. When several threads race the
    /// allocation, one segment wins the publication CAS and the losers
    /// free theirs — slots that were ever observable never move.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn get_or_alloc(&self, index: usize) -> &T
    where
        T: Default,
    {
        assert!(index < self.capacity, "slot index out of capacity");
        let (seg, off, len) = self.locate(index);
        let mut p = self.segments[seg].load(Ordering::Acquire);
        if p.is_null() {
            let fresh: Box<[T]> = (0..len).map(|_| T::default()).collect();
            let fresh = Box::into_raw(fresh) as *mut T;
            match self.segments[seg].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.allocated.fetch_add(1, Ordering::Relaxed);
                    p = fresh;
                }
                Err(winner) => {
                    // Lost the race: reconstitute and drop our segment
                    // (it was never observable).
                    // SAFETY: `fresh` came from `Box::into_raw` of a
                    // `len`-slot boxed slice just above and was not
                    // published.
                    drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(fresh, len)) });
                    p = winner;
                }
            }
        }
        // SAFETY: as in `get` — `p` is a published (or just-won)
        // allocation of `len` initialized slots, stable for the table's
        // lifetime.
        unsafe { &*p.add(off) }
    }

    /// Visits every slot in every *allocated* segment, in index order,
    /// with its index. Slots in unallocated segments are skipped (they
    /// do not exist yet).
    pub fn for_each_allocated<'s>(&'s self, mut f: impl FnMut(usize, &'s T)) {
        for seg in 0..self.segments.len() {
            let p = self.segments[seg].load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            let (start, len) = if seg == 0 {
                (0, self.base)
            } else {
                (self.base << (seg - 1), self.base << (seg - 1))
            };
            for off in 0..len {
                // SAFETY: as in `get` — published segment of `len`
                // initialized slots, stable for the table's lifetime.
                let slot = unsafe { &*p.add(off) };
                f(start + off, slot);
            }
        }
    }
}

impl<T> Drop for SegmentTable<T> {
    fn drop(&mut self) {
        for seg in 0..self.segments.len() {
            let p = self.segments[seg].load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            let len = if seg == 0 {
                self.base
            } else {
                self.base << (seg - 1)
            };
            // SAFETY: `&mut self` — no readers; the pointer was produced
            // by `Box::into_raw` of a `len`-slot boxed slice and never
            // freed (segments are append-only while the table lives).
            drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(p, len)) });
        }
    }
}

impl<T> fmt::Debug for SegmentTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentTable")
            .field("base", &self.base)
            .field("capacity", &self.capacity)
            .field("allocated_segments", &self.allocated_segments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_math_covers_the_range_without_gaps() {
        let t: SegmentTable<u8> = SegmentTable::new(2, 64);
        let mut seen = [false; 64];
        t.for_each_allocated(|i, _| seen[i] = true);
        assert!(seen.iter().all(|s| !s), "nothing allocated yet");
        for i in 0..64 {
            let (seg, off, len) = t.locate(i);
            assert!(off < len, "index {i}: offset {off} out of segment {seg}");
            // Segment start + offset must reproduce the index.
            let start = if seg == 0 { 0 } else { 2usize << (seg - 1) };
            assert_eq!(start + off, i);
        }
        for i in 0..64 {
            t.get_or_alloc(i);
        }
        t.for_each_allocated(|i, _| seen[i] = true);
        assert!(seen.iter().all(|s| *s), "every slot visited exactly once");
    }

    #[test]
    fn lazy_allocation_and_stability() {
        let t: SegmentTable<u64> = SegmentTable::new(4, 1 << 10);
        assert_eq!(t.allocated_segments(), 0);
        assert!(t.get(100).is_none());
        let a = t.get_or_alloc(100) as *const u64;
        assert!(t.allocated_segments() >= 1);
        // Touching other segments must not move the slot.
        for i in (0..1024).step_by(97) {
            t.get_or_alloc(i);
        }
        let b = t.get(100).unwrap() as *const u64;
        assert_eq!(a, b, "slots are type-stable");
    }

    #[test]
    fn racing_allocators_agree_on_one_segment() {
        let t: SegmentTable<AtomicUsize> = SegmentTable::new(2, 256);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..256 {
                        t.get_or_alloc(i).fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // If losers' segments had been published, increments would be
        // scattered across duplicate slots.
        let mut total = 0;
        t.for_each_allocated(|_, v| total += v.load(Ordering::Relaxed));
        assert_eq!(total, 4 * 256);
    }

    #[test]
    fn drop_runs_destructors_only_for_allocated_segments() {
        use valois_sync::shim::atomic::{AtomicUsize as DropCounter, Ordering as DropOrdering};
        static DROPS: DropCounter = DropCounter::new(0);
        struct Probe;
        impl Default for Probe {
            fn default() -> Self {
                Probe
            }
        }
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, DropOrdering::Relaxed);
            }
        }
        DROPS.store(0, DropOrdering::Relaxed);
        {
            let t: SegmentTable<Probe> = SegmentTable::new(2, 64);
            t.get_or_alloc(0); // segment 0: 2 slots
            t.get_or_alloc(5); // segment 2: [4, 8) = 4 slots
        }
        assert_eq!(DROPS.load(DropOrdering::Relaxed), 2 + 4);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_capacity_panics() {
        let t: SegmentTable<u8> = SegmentTable::new(2, 16);
        t.get_or_alloc(16);
    }
}
