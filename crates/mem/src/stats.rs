//! Memory-manager statistics.
//!
//! §6 of the paper singles out `SafeRead` as "the most time consuming
//! operation"; experiment E8 quantifies that, and E3 needs CAS retry
//! counts. E8 also showed the *instrumentation itself* used to be part of
//! the problem: a single set of relaxed atomics meant every `safe_read`
//! from every thread bumped the same cache line. The counters are now
//! [`Sharded`] — cache-line-padded per-shard atomics with a summing read
//! side — and the hot paths batch their events in a thread-private
//! [`MemTally`] that is folded into the shards in one `fetch_add` per
//! counter per batch.

use std::fmt;

use valois_sync::sharded::Sharded;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

/// One shard of the arena's counters (all nine live on one padded line).
#[derive(Default)]
pub(crate) struct StatShard {
    pub(crate) safe_reads: AtomicU64,
    pub(crate) safe_read_retries: AtomicU64,
    pub(crate) releases: AtomicU64,
    pub(crate) allocs: AtomicU64,
    pub(crate) alloc_retries: AtomicU64,
    pub(crate) reclaims: AtomicU64,
    pub(crate) swings: AtomicU64,
    pub(crate) swing_failures: AtomicU64,
    pub(crate) grows: AtomicU64,
}

/// Sharded live counters owned by an [`Arena`](crate::Arena).
pub struct StatCounters {
    shards: Sharded<StatShard>,
}

impl Default for StatCounters {
    fn default() -> Self {
        Self {
            shards: Sharded::new(),
        }
    }
}

impl StatCounters {
    /// Adds 1 to one counter on the current thread's shard.
    #[inline]
    pub(crate) fn bump(&self, pick: impl FnOnce(&StatShard) -> &AtomicU64) {
        pick(self.shards.get()).fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a thread-private tally into the current thread's shard and
    /// clears it. One `fetch_add` per non-zero field, however many events
    /// the tally batched.
    pub(crate) fn absorb(&self, tally: &mut MemTally) {
        let shard = self.shards.get();
        for (count, counter) in [
            (tally.safe_reads, &shard.safe_reads),
            (tally.safe_read_retries, &shard.safe_read_retries),
            (tally.releases, &shard.releases),
            (tally.reclaims, &shard.reclaims),
        ] {
            if count != 0 {
                counter.fetch_add(count, Ordering::Relaxed);
            }
        }
        *tally = MemTally::new();
    }

    /// Takes a point-in-time snapshot (sums every shard).
    pub fn snapshot(&self) -> MemStats {
        let mut s = MemStats::default();
        for shard in self.shards.shards() {
            s.safe_reads += shard.safe_reads.load(Ordering::Relaxed);
            s.safe_read_retries += shard.safe_read_retries.load(Ordering::Relaxed);
            s.releases += shard.releases.load(Ordering::Relaxed);
            s.allocs += shard.allocs.load(Ordering::Relaxed);
            s.alloc_retries += shard.alloc_retries.load(Ordering::Relaxed);
            s.reclaims += shard.reclaims.load(Ordering::Relaxed);
            s.swings += shard.swings.load(Ordering::Relaxed);
            s.swing_failures += shard.swing_failures.load(Ordering::Relaxed);
            s.grows += shard.grows.load(Ordering::Relaxed);
        }
        s
    }
}

impl fmt::Debug for StatCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A thread-private batch of hot-path protocol events.
///
/// `Arena::safe_read_tallied` and the deferred-release drain record their
/// traffic here with plain integer adds — no shared-memory RMW per event —
/// and the owner folds the batch into the arena's sharded counters via
/// `Arena::flush_tally` (or implicitly: `release`/`safe_read` absorb their
/// own single-shot tallies). Until a tally is flushed its events are
/// invisible to [`Arena::stats`](crate::Arena::stats); cursors flush on
/// drop.
#[derive(Debug, Clone, Default)]
pub struct MemTally {
    pub(crate) safe_reads: u64,
    pub(crate) safe_read_retries: u64,
    pub(crate) releases: u64,
    pub(crate) reclaims: u64,
}

impl MemTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any events are batched.
    pub fn is_empty(&self) -> bool {
        self.safe_reads == 0
            && self.safe_read_retries == 0
            && self.releases == 0
            && self.reclaims == 0
    }
}

/// Point-in-time snapshot of an arena's activity counters.
///
/// Obtain via [`Arena::stats`](crate::Arena::stats). Differences between two
/// snapshots measure a workload's memory-protocol traffic (experiments
/// E3/E8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Completed `SafeRead` operations (Fig. 15).
    pub safe_reads: u64,
    /// `SafeRead` retries (pointer changed between read and increment).
    pub safe_read_retries: u64,
    /// `Release` operations (Fig. 16), including link releases at reclaim.
    pub releases: u64,
    /// Successful `Alloc` operations (Fig. 17).
    pub allocs: u64,
    /// `Alloc` CAS retries (free-list head contention).
    pub alloc_retries: u64,
    /// Reclamations (Fig. 18 pushes back onto the free list).
    pub reclaims: u64,
    /// Counted-link CAS swings attempted via `Arena::swing`.
    pub swings: u64,
    /// Swings whose CAS failed (contention/invalid cursor — the paper's
    /// retry signal).
    pub swing_failures: u64,
    /// Arena segment growth events.
    pub grows: u64,
    /// Epoch backend: outermost pins taken (one per protected operation).
    /// Zero under the refcount backend (likewise for every field below).
    pub epoch_pins: u64,
    /// Epoch backend: successful global-epoch advances.
    pub epoch_advances: u64,
    /// Epoch backend: nodes retired into limbo (link in-degree hit zero).
    pub epoch_retires: u64,
    /// Epoch backend: limbo nodes whose grace period elapsed and were
    /// recycled.
    pub epoch_frees: u64,
    /// Epoch backend **gauge** (point-in-time, not cumulative): nodes
    /// currently in limbo. A large value alongside `AllocError` means
    /// reclamation is blocked — check `epoch_pin_lag`.
    pub epoch_limbo_depth: u64,
    /// Epoch backend **gauge**: how many epochs the oldest pinned thread
    /// lags the global epoch (0 = nobody stalled). A persistently large
    /// lag identifies a stalled reader pinning an old epoch.
    pub epoch_pin_lag: u64,
}

impl MemStats {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    /// The `epoch_limbo_depth`/`epoch_pin_lag` *gauges* are carried over
    /// from `self` unchanged (differencing a point-in-time gauge is
    /// meaningless).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            safe_reads: self.safe_reads.saturating_sub(earlier.safe_reads),
            safe_read_retries: self
                .safe_read_retries
                .saturating_sub(earlier.safe_read_retries),
            releases: self.releases.saturating_sub(earlier.releases),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            alloc_retries: self.alloc_retries.saturating_sub(earlier.alloc_retries),
            reclaims: self.reclaims.saturating_sub(earlier.reclaims),
            swings: self.swings.saturating_sub(earlier.swings),
            swing_failures: self.swing_failures.saturating_sub(earlier.swing_failures),
            grows: self.grows.saturating_sub(earlier.grows),
            epoch_pins: self.epoch_pins.saturating_sub(earlier.epoch_pins),
            epoch_advances: self.epoch_advances.saturating_sub(earlier.epoch_advances),
            epoch_retires: self.epoch_retires.saturating_sub(earlier.epoch_retires),
            epoch_frees: self.epoch_frees.saturating_sub(earlier.epoch_frees),
            epoch_limbo_depth: self.epoch_limbo_depth,
            epoch_pin_lag: self.epoch_pin_lag,
        }
    }

    /// Nodes currently checked out (allocated and not yet reclaimed).
    pub fn live_nodes(&self) -> u64 {
        self.allocs.saturating_sub(self.reclaims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = StatCounters::default();
        c.bump(|s| &s.safe_reads);
        c.bump(|s| &s.safe_reads);
        c.bump(|s| &s.allocs);
        let s = c.snapshot();
        assert_eq!(s.safe_reads, 2);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.reclaims, 0);
    }

    #[test]
    fn absorb_folds_and_clears_a_tally() {
        let c = StatCounters::default();
        let mut t = MemTally::new();
        t.safe_reads = 5;
        t.releases = 3;
        t.reclaims = 1;
        assert!(!t.is_empty());
        c.absorb(&mut t);
        assert!(t.is_empty(), "absorb must clear the tally");
        let s = c.snapshot();
        assert_eq!(s.safe_reads, 5);
        assert_eq!(s.releases, 3);
        assert_eq!(s.reclaims, 1);
        // Absorbing an empty tally is a no-op.
        c.absorb(&mut t);
        assert_eq!(c.snapshot(), s);
    }

    #[test]
    fn snapshot_sums_across_threads() {
        let c = std::sync::Arc::new(StatCounters::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..500 {
                        c.bump(|s| &s.releases);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().releases, 2000);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let a = MemStats {
            safe_reads: 10,
            allocs: 5,
            reclaims: 2,
            ..MemStats::default()
        };
        let b = MemStats {
            safe_reads: 4,
            allocs: 5,
            reclaims: 1,
            ..MemStats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.safe_reads, 6);
        assert_eq!(d.allocs, 0);
        assert_eq!(d.reclaims, 1);
    }

    #[test]
    fn live_nodes_is_allocs_minus_reclaims() {
        let s = MemStats {
            allocs: 7,
            reclaims: 3,
            ..MemStats::default()
        };
        assert_eq!(s.live_nodes(), 4);
    }
}
