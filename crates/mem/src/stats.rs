//! Memory-manager statistics.
//!
//! §6 of the paper singles out `SafeRead` as "the most time consuming
//! operation"; experiment E8 quantifies that, and E3 needs CAS retry
//! counts. The counters here are relaxed atomics — their cost is validated
//! to be in the noise by the `stats_overhead` Criterion bench.

use std::fmt;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

/// Live counters owned by an [`Arena`](crate::Arena).
#[derive(Default)]
pub struct StatCounters {
    pub(crate) safe_reads: AtomicU64,
    pub(crate) safe_read_retries: AtomicU64,
    pub(crate) releases: AtomicU64,
    pub(crate) allocs: AtomicU64,
    pub(crate) alloc_retries: AtomicU64,
    pub(crate) reclaims: AtomicU64,
    pub(crate) swings: AtomicU64,
    pub(crate) swing_failures: AtomicU64,
    pub(crate) grows: AtomicU64,
}

impl StatCounters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot.
    pub fn snapshot(&self) -> MemStats {
        MemStats {
            safe_reads: self.safe_reads.load(Ordering::Relaxed),
            safe_read_retries: self.safe_read_retries.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            alloc_retries: self.alloc_retries.load(Ordering::Relaxed),
            reclaims: self.reclaims.load(Ordering::Relaxed),
            swings: self.swings.load(Ordering::Relaxed),
            swing_failures: self.swing_failures.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for StatCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Point-in-time snapshot of an arena's activity counters.
///
/// Obtain via [`Arena::stats`](crate::Arena::stats). Differences between two
/// snapshots measure a workload's memory-protocol traffic (experiments
/// E3/E8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Completed `SafeRead` operations (Fig. 15).
    pub safe_reads: u64,
    /// `SafeRead` retries (pointer changed between read and increment).
    pub safe_read_retries: u64,
    /// `Release` operations (Fig. 16), including link releases at reclaim.
    pub releases: u64,
    /// Successful `Alloc` operations (Fig. 17).
    pub allocs: u64,
    /// `Alloc` CAS retries (free-list head contention).
    pub alloc_retries: u64,
    /// Reclamations (Fig. 18 pushes back onto the free list).
    pub reclaims: u64,
    /// Counted-link CAS swings attempted via `Arena::swing`.
    pub swings: u64,
    /// Swings whose CAS failed (contention/invalid cursor — the paper's
    /// retry signal).
    pub swing_failures: u64,
    /// Arena segment growth events.
    pub grows: u64,
}

impl MemStats {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            safe_reads: self.safe_reads.saturating_sub(earlier.safe_reads),
            safe_read_retries: self
                .safe_read_retries
                .saturating_sub(earlier.safe_read_retries),
            releases: self.releases.saturating_sub(earlier.releases),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            alloc_retries: self.alloc_retries.saturating_sub(earlier.alloc_retries),
            reclaims: self.reclaims.saturating_sub(earlier.reclaims),
            swings: self.swings.saturating_sub(earlier.swings),
            swing_failures: self.swing_failures.saturating_sub(earlier.swing_failures),
            grows: self.grows.saturating_sub(earlier.grows),
        }
    }

    /// Nodes currently checked out (allocated and not yet reclaimed).
    pub fn live_nodes(&self) -> u64 {
        self.allocs.saturating_sub(self.reclaims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = StatCounters::default();
        StatCounters::bump(&c.safe_reads);
        StatCounters::bump(&c.safe_reads);
        StatCounters::bump(&c.allocs);
        let s = c.snapshot();
        assert_eq!(s.safe_reads, 2);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.reclaims, 0);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let a = MemStats {
            safe_reads: 10,
            allocs: 5,
            reclaims: 2,
            ..MemStats::default()
        };
        let b = MemStats {
            safe_reads: 4,
            allocs: 5,
            reclaims: 1,
            ..MemStats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.safe_reads, 6);
        assert_eq!(d.allocs, 0);
        assert_eq!(d.reclaims, 1);
    }

    #[test]
    fn live_nodes_is_allocs_minus_reclaims() {
        let s = MemStats {
            allocs: 7,
            reclaims: 3,
            ..MemStats::default()
        };
        assert_eq!(s.live_nodes(), 4);
    }
}
