//! A lock-free buddy system for variable-sized cells (paper §5.2):
//! "Much more elaborate schemes are possible; in particular, in \[28\] we
//! show how to extend these ideas to implement a lock-free buddy system
//! which provides management of variable-sized cells."
//!
//! This module is our concretization of that pointer. The allocator
//! manages a region of `2^max_order` units as the classic binary buddy
//! tree; every node of the tree (a possible block: an (order, position)
//! pair) carries an atomic *state word*, and each order has a lock-free
//! free list of node ids.
//!
//! # The protocol
//!
//! * A block becomes available by storing `FREE` into its state and
//!   pushing its id onto its order's free list (a Treiber stack of ids
//!   with a version-tagged head — the classic tag trick the paper
//!   mentions in §5.1, legitimate here because ids are 32-bit so a tag
//!   fits alongside).
//! * Taking a block — by `alloc` popping the list **or** by `free`
//!   claiming the buddy of a freed block for merging — is a single CAS
//!   `FREE → TAKEN` on the state word. The free list may retain a *stale*
//!   entry; pops validate with that same CAS and simply discard losers
//!   (lazy deletion: this is what makes interior removal unnecessary).
//! * `alloc(order)` pops its order's list, or pops a larger block and
//!   splits it down, pushing the right halves; `free` merges with the
//!   buddy whenever the buddy's `FREE → TAKEN` CAS succeeds, walking up
//!   the tree.
//!
//! All operations are lock-free: a stalled thread can leave at most a
//! bounded number of stale list entries, never block anyone.

use std::fmt;
use valois_sync::shim::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Block states. One word per tree node (order × position), so reuse of a
/// region at a *different* order can never be confused with this node.
const S_INVALID: u8 = 0; // not currently a block (parent split differently / part of larger block)
const S_FREE: u8 = 1; // in its order's free list, claimable
const S_TAKEN: u8 = 2; // exclusively owned (allocated, mid-split, or mid-merge)
const S_SPLIT: u8 = 3; // split into two children

/// Allocation failure: no block of the requested order can be carved out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuddyExhausted;

impl fmt::Display for BuddyExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("buddy region exhausted for the requested order")
    }
}

impl std::error::Error for BuddyExhausted {}

/// A block handle: order and offset (in minimum units) into the region.
///
/// Returned by [`BuddyAllocator::alloc`]; must be passed back to
/// [`BuddyAllocator::free`] exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// log2 of the block size in minimum units.
    pub order: u32,
    /// Offset in minimum units (always a multiple of `1 << order`).
    pub offset: u32,
}

impl Block {
    /// Block size in minimum units.
    pub fn units(&self) -> u32 {
        1 << self.order
    }
}

/// The lock-free binary buddy allocator (see module docs).
pub struct BuddyAllocator {
    max_order: u32,
    /// State word per tree node, heap-indexed: node 0 is the whole region,
    /// children of n are 2n+1 / 2n+2.
    states: Box<[AtomicU8]>,
    /// Per-order free list head: (tag: u32, node_id+1: u32) packed; 0 in
    /// the low half means empty.
    heads: Box<[AtomicU64]>,
    /// Next-pointers for the free lists (node id + 1; 0 = end).
    next: Box<[AtomicU32]>,
    /// In-list entry count per node (0 or 1). A node claimed *out of band*
    /// (buddy merge) leaves its entry in the list; re-publishing such a
    /// node must not push a second entry — the stale one re-arms the
    /// moment the state returns to FREE — or the shared `next` slot would
    /// be clobbered and the list would lose a suffix.
    entries: Box<[AtomicU8]>,
    /// Outstanding allocated units (diagnostics / leak check).
    allocated_units: AtomicU64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `2^max_order` minimum units.
    ///
    /// # Panics
    ///
    /// Panics if `max_order` > 24 (16M units — the id packing limit).
    pub fn new(max_order: u32) -> Self {
        assert!(max_order <= 24, "max_order too large for id packing");
        let node_count = (1usize << (max_order + 1)) - 1;
        let allocator = Self {
            max_order,
            states: (0..node_count).map(|_| AtomicU8::new(S_INVALID)).collect(),
            heads: (0..=max_order).map(|_| AtomicU64::new(0)).collect(),
            next: (0..node_count).map(|_| AtomicU32::new(0)).collect(),
            entries: (0..node_count).map(|_| AtomicU8::new(0)).collect(),
            allocated_units: AtomicU64::new(0),
        };
        // The whole region starts as one free block.
        allocator.publish(max_order, 0);
        allocator
    }

    /// Total units managed.
    pub fn capacity_units(&self) -> u64 {
        1u64 << self.max_order
    }

    /// Units currently allocated.
    pub fn allocated_units(&self) -> u64 {
        self.allocated_units.load(Ordering::Relaxed)
    }

    // ---- tree geometry -------------------------------------------------

    fn node_order(&self, node: u32) -> u32 {
        // Depth of `node` in the heap; root (node 0) has the max order.
        self.max_order - (node + 1).ilog2()
    }

    fn node_offset(&self, node: u32) -> u32 {
        let depth = (node + 1).ilog2();
        let first_at_depth = (1u32 << depth) - 1;
        (node - first_at_depth) << (self.max_order - depth)
    }

    fn node_for(&self, block: Block) -> u32 {
        let depth = self.max_order - block.order;
        let first_at_depth = (1u32 << depth) - 1;
        first_at_depth + (block.offset >> block.order)
    }

    fn buddy_of(node: u32) -> Option<u32> {
        if node == 0 {
            return None; // the root has no buddy
        }
        Some(if node % 2 == 1 { node + 1 } else { node - 1 })
    }

    fn parent_of(node: u32) -> u32 {
        (node - 1) / 2
    }

    // ---- tagged free-list stacks ----------------------------------------

    /// Makes an exclusively-owned node available: stores FREE, then pushes
    /// an entry unless a stale one is already in the list (see `entries`).
    /// Only the node's exclusive owner may call this.
    fn publish(&self, order: u32, node: u32) {
        self.states[node as usize].store(S_FREE, Ordering::Release);
        // FREE must be visible before the entry gate: a stale in-list
        // entry re-arms against it, so skipping the push is then safe.
        // The gate itself must be an atomic 0→1 transition — after the
        // store above, ownership can move on (claim → merge → re-split →
        // re-publish), making publishes of this node concurrent; exactly
        // one may push or the shared `next` slot would be clobbered.
        if self.entries[node as usize].fetch_add(1, Ordering::AcqRel) == 0 {
            self.push(order, node);
        } else {
            self.entries[node as usize].fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn push(&self, order: u32, node: u32) {
        let head = &self.heads[order as usize];
        // WAIT-FREE: a failed CAS means another push or pop moved this
        // order's head — system-wide progress every retry.
        loop {
            let old = head.load(Ordering::Acquire);
            self.next[node as usize].store(old as u32, Ordering::Relaxed);
            let tag = (old >> 32).wrapping_add(1);
            let new = (tag << 32) | u64::from(node + 1);
            if head
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pops a *valid* free block of `order` (discarding stale entries), or
    /// `None` when the list is empty.
    fn pop(&self, order: u32) -> Option<u32> {
        let head = &self.heads[order as usize];
        // WAIT-FREE: a failed head CAS means another push or pop won, and
        // every stale-entry iteration permanently discards one lazily
        // deleted entry — both are system-wide progress.
        loop {
            let old = head.load(Ordering::Acquire);
            let id_plus = old as u32;
            if id_plus == 0 {
                return None;
            }
            let node = id_plus - 1;
            let next = self.next[node as usize].load(Ordering::Relaxed);
            let tag = (old >> 32).wrapping_add(1);
            let new = (tag << 32) | u64::from(next);
            if head
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Entry detached: drop its in-list accounting *before*
            // validating, so a concurrent publish observing count 0 can
            // safely push a fresh entry.
            self.entries[node as usize].fetch_sub(1, Ordering::AcqRel);
            // Validate (lazy deletion of stale entries: a merge may have
            // TAKEN this node while its entry remained).
            if self.states[node as usize]
                .compare_exchange(S_FREE, S_TAKEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(node);
            }
            // Stale: drop it and keep popping.
        }
    }

    // ---- public operations ----------------------------------------------

    /// Allocates a block of `2^order` units.
    ///
    /// # Errors
    ///
    /// [`BuddyExhausted`] when no block of that order can be carved out.
    pub fn alloc(&self, order: u32) -> Result<Block, BuddyExhausted> {
        if order > self.max_order {
            return Err(BuddyExhausted);
        }
        // Find the smallest order ≥ requested with a free block.
        let mut found = None;
        for o in order..=self.max_order {
            if let Some(node) = self.pop(o) {
                found = Some((o, node));
                break;
            }
        }
        let (mut o, mut node) = found.ok_or(BuddyExhausted)?;
        // Split down to the requested order; we own `node` (TAKEN).
        while o > order {
            self.states[node as usize].store(S_SPLIT, Ordering::Release);
            let left = 2 * node + 1;
            let right = 2 * node + 2;
            // Right half becomes free; we keep the left.
            self.publish(o - 1, right);
            self.states[left as usize].store(S_TAKEN, Ordering::Release);
            node = left;
            o -= 1;
        }
        self.allocated_units
            .fetch_add(1u64 << order, Ordering::Relaxed);
        Ok(Block {
            order,
            offset: self.node_offset(node),
        })
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`],
    /// merging with free buddies as far up as possible.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double-free or foreign blocks.
    pub fn free(&self, block: Block) {
        let mut node = self.node_for(block);
        debug_assert_eq!(
            self.states[node as usize].load(Ordering::Acquire),
            S_TAKEN,
            "freeing a block that is not allocated"
        );
        self.allocated_units
            .fetch_sub(1u64 << block.order, Ordering::Relaxed);
        // WAIT-FREE: bounded by tree height — each iteration either merges
        // one level up (the buddy-claim CAS is one-shot per level) or
        // publishes and returns; there is no retry at the same level.
        loop {
            let buddy = match Self::buddy_of(node) {
                None => {
                    // Whole region free again.
                    self.publish(self.max_order, node);
                    return;
                }
                Some(b) => b,
            };
            // Try to claim the buddy for merging. Success leaves a stale
            // list entry behind (lazily discarded by pop).
            if self.states[buddy as usize]
                .compare_exchange(S_FREE, S_TAKEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Merge: both children invalid, parent becomes ours.
                let parent = Self::parent_of(node);
                self.states[node as usize].store(S_INVALID, Ordering::Release);
                self.states[buddy as usize].store(S_INVALID, Ordering::Release);
                self.states[parent as usize].store(S_TAKEN, Ordering::Release);
                node = parent;
                continue;
            }
            // Buddy busy: publish ourselves.
            self.publish(self.node_order(node), node);
            return;
        }
    }

    /// Largest order currently allocatable (diagnostic; racy by nature).
    pub fn probe_max_free_order(&self) -> Option<u32> {
        for o in (0..=self.max_order).rev() {
            if let Some(node) = self.pop(o) {
                // Put it right back.
                self.publish(o, node);
                return Some(o);
            }
        }
        None
    }
}

impl fmt::Debug for BuddyAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuddyAllocator")
            .field("capacity_units", &self.capacity_units())
            .field("allocated_units", &self.allocated_units())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn alloc_free_roundtrip_restores_full_region() {
        let a = BuddyAllocator::new(4); // 16 units
        let b = a.alloc(2).unwrap(); // 4 units
        assert_eq!(b.units(), 4);
        assert_eq!(a.allocated_units(), 4);
        a.free(b);
        assert_eq!(a.allocated_units(), 0);
        // Merging must have reconstructed the maximal block.
        assert_eq!(a.probe_max_free_order(), Some(4));
    }

    #[test]
    fn alloc_all_min_blocks_then_free_all_merges_back() {
        let a = BuddyAllocator::new(5); // 32 units
        let blocks: Vec<Block> = (0..32).map(|_| a.alloc(0).unwrap()).collect();
        // All offsets distinct and in range.
        let offsets: HashSet<u32> = blocks.iter().map(|b| b.offset).collect();
        assert_eq!(offsets.len(), 32);
        assert!(offsets.iter().all(|&o| o < 32));
        assert!(a.alloc(0).is_err(), "region exhausted");
        for b in blocks {
            a.free(b);
        }
        assert_eq!(a.allocated_units(), 0);
        assert_eq!(a.probe_max_free_order(), Some(5), "fully merged");
    }

    #[test]
    fn mixed_orders_do_not_overlap() {
        let a = BuddyAllocator::new(6); // 64 units
        let mut taken: Vec<(u32, u32)> = Vec::new(); // (start, end)
        let mut blocks = Vec::new();
        for order in [3, 0, 2, 1, 0, 4, 0] {
            if let Ok(b) = a.alloc(order) {
                let start = b.offset;
                let end = b.offset + b.units();
                for &(s, e) in &taken {
                    assert!(
                        end <= s || start >= e,
                        "overlap: [{start},{end}) vs [{s},{e})"
                    );
                }
                taken.push((start, end));
                blocks.push(b);
            }
        }
        for b in blocks {
            a.free(b);
        }
        assert_eq!(a.probe_max_free_order(), Some(6));
    }

    #[test]
    fn exhaustion_reports_error() {
        let a = BuddyAllocator::new(3); // 8 units
        let b = a.alloc(3).unwrap();
        assert!(a.alloc(0).is_err());
        a.free(b);
        assert!(a.alloc(0).is_ok());
    }

    #[test]
    fn oversized_request_rejected() {
        let a = BuddyAllocator::new(3);
        assert_eq!(a.alloc(4), Err(BuddyExhausted));
    }

    #[test]
    fn exhausted_error_displays() {
        assert_eq!(
            format!("{BuddyExhausted}"),
            "buddy region exhausted for the requested order"
        );
    }

    #[test]
    fn geometry_roundtrip() {
        let a = BuddyAllocator::new(6);
        for node in 0..127u32 {
            let order = a.node_order(node);
            let offset = a.node_offset(node);
            assert_eq!(a.node_for(Block { order, offset }), node);
            assert_eq!(offset % (1 << order), 0, "aligned");
        }
    }

    #[test]
    fn buddies_pair_correctly() {
        assert_eq!(BuddyAllocator::buddy_of(0), None);
        assert_eq!(BuddyAllocator::buddy_of(1), Some(2));
        assert_eq!(BuddyAllocator::buddy_of(2), Some(1));
        assert_eq!(BuddyAllocator::buddy_of(9), Some(10));
        assert_eq!(BuddyAllocator::parent_of(9), 4);
        assert_eq!(BuddyAllocator::parent_of(10), 4);
    }

    #[test]
    fn concurrent_alloc_free_never_overlaps() {
        let a = BuddyAllocator::new(10); // 1024 units
                                         // Each thread marks the units of every block it holds in a shared
                                         // bitmap with fetch_or; any double-set bit is an overlap.
        let bitmap: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            let a = &a;
            let bitmap = &bitmap;
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut rng = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut held: Vec<Block> = Vec::new();
                    for _ in 0..2_000 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        if rng & 1 == 0 || held.is_empty() {
                            let order = (rng >> 8) % 4;
                            if let Ok(b) = a.alloc(order as u32) {
                                // Mark bits; assert none were set.
                                for u in b.offset..b.offset + b.units() {
                                    let w = (u / 64) as usize;
                                    let bit = 1u64 << (u % 64);
                                    let prev = bitmap[w].fetch_or(bit, Ordering::AcqRel);
                                    assert_eq!(prev & bit, 0, "unit {u} double-allocated");
                                }
                                held.push(b);
                            }
                        } else {
                            let idx = ((rng >> 16) as usize) % held.len();
                            let b = held.swap_remove(idx);
                            for u in b.offset..b.offset + b.units() {
                                let w = (u / 64) as usize;
                                let bit = 1u64 << (u % 64);
                                bitmap[w].fetch_and(!bit, Ordering::AcqRel);
                            }
                            a.free(b);
                        }
                    }
                    for b in held {
                        for u in b.offset..b.offset + b.units() {
                            let w = (u / 64) as usize;
                            bitmap[w].fetch_and(!(1u64 << (u % 64)), Ordering::AcqRel);
                        }
                        a.free(b);
                    }
                });
            }
        });
        assert_eq!(a.allocated_units(), 0);
        assert!(bitmap.iter().all(|w| w.load(Ordering::Relaxed) == 0));
        assert_eq!(
            a.probe_max_free_order(),
            Some(10),
            "everything merged back after concurrent churn"
        );
    }

    #[test]
    fn fragmentation_then_recovery() {
        let a = BuddyAllocator::new(8); // 256 units
                                        // Allocate alternating unit blocks to fragment maximally.
        let blocks: Vec<Block> = (0..256).map(|_| a.alloc(0).unwrap()).collect();
        // Free every even-offset block: max free order must be 0 (all
        // buddies of free blocks are still allocated).
        for b in blocks.iter().filter(|b| b.offset.is_multiple_of(2)) {
            a.free(*b);
        }
        assert_eq!(a.probe_max_free_order(), Some(0), "fully fragmented");
        assert!(a.alloc(1).is_err(), "no order-1 block available");
        // Free the rest: everything merges to the top.
        for b in blocks.iter().filter(|b| b.offset % 2 == 1) {
            a.free(*b);
        }
        assert_eq!(a.probe_max_free_order(), Some(8));
    }
}
