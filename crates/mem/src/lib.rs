//! Memory management for the Valois lock-free list (paper §5).
//!
//! The paper's algorithms require three guarantees from the memory manager:
//!
//! 1. **Cell persistence** (§2.2): a cell deleted from the list must remain
//!    readable by processes still holding cursors to it.
//! 2. **ABA freedom** (§5.1): a cell must never be *reused* while any process
//!    still holds a pointer to it, so that `Compare&Swap` on pointers is
//!    safe without double-word tags.
//! 3. **Lock-free allocation** (§5.2): `Alloc`/`Reclaim` themselves must be
//!    non-blocking.
//!
//! All three are provided by the reference-counting protocol of Figs. 15–18:
//! [`Arena::safe_read`] (Fig. 15), [`Arena::release`] (Fig. 16),
//! [`Arena::alloc`] (Fig. 17) and the internal `Reclaim` (Fig. 18), built
//! over a **type-stable segmented arena**: node memory is owned by the
//! [`Arena`] and never returned to the OS while the arena lives, so even the
//! protocol's benign transient touches of recycled nodes are memory-safe.
//!
//! # The counting invariant
//!
//! A node's reference count (`refct`) is the number of:
//!
//! * *process references* — pointers returned by [`Arena::safe_read`] /
//!   [`Arena::incr_ref`] and not yet passed to [`Arena::release`], plus
//! * *link references* — counted pointer fields (other nodes' `next` /
//!   `back_link` fields, and structure roots) currently holding the node's
//!   address.
//!
//! Every CAS that swings a counted link must transfer counts; use
//! [`Arena::swing`] which increments the new target before the CAS and
//! releases the old target on success (undoing on failure).
//!
//! A node whose count reaches zero is unreachable and unprotected; the
//! `claim` Test&Set arbitrates concurrent observers of the zero so exactly
//! one reclaims it (Fig. 16). Reclamation drains the node's outgoing counted
//! links (releasing each — this is what makes counts exact) and pushes the
//! node onto the lock-free free list.
//!
//! # Corrections relative to the published pseudo-code
//!
//! The published Fig. 16/17 pseudo-code is known to be subtle; following the
//! spirit of Michael & Scott's 1995 correction note we make two ordering
//! choices, documented here because they are easy to get wrong:
//!
//! * **Reclaim adds, never stores.** When the claim winner pushes a node
//!   onto the free list it *adds* 1 to `refct` (the free list's incoming
//!   pointer) rather than storing 1. A store would erase a concurrent
//!   transient increment from a stale `SafeRead`, whose matching release
//!   would later underflow the count.
//! * **`claim` is cleared only by `Alloc`** (Fig. 17 line 8), at a moment
//!   when the allocator is the sole owner. While a node is free its `claim`
//!   stays set, so stale releases that race the push can never win a second
//!   reclamation.
//!
//! Debug builds assert count non-underflow and single-claim; the stress
//! tests in this crate and in `valois-core` hammer these paths.
//!
//! # Example: a managed node type
//!
//! A structure brings its own node layout; implementing [`Managed`] wires
//! it into the protocol. The contract: every counted reference obtained
//! from the arena is released exactly once, and links installed with
//! [`Arena::store_link`]/[`Arena::swing`] transfer counts automatically.
//!
//! ```
//! use valois_mem::{Arena, ArenaConfig, Link, Managed, NodeHeader, ReclaimedLinks};
//!
//! #[derive(Default)]
//! struct MyNode {
//!     header: NodeHeader,
//!     next: Link<MyNode>,
//!     value: std::sync::atomic::AtomicU64,
//! }
//!
//! impl Managed for MyNode {
//!     fn header(&self) -> &NodeHeader { &self.header }
//!     fn free_link(&self) -> &Link<Self> { &self.next }
//!     fn drain_links(&self) -> ReclaimedLinks<Self> {
//!         let mut links = ReclaimedLinks::new();
//!         links.push(self.next.swap(std::ptr::null_mut()));
//!         links
//!     }
//!     fn reset_for_alloc(&self) {
//!         self.next.write(std::ptr::null_mut());
//!     }
//! }
//!
//! let arena: Arena<MyNode> =
//!     Arena::with_config(ArenaConfig::new().initial_capacity(8).max_nodes(8));
//! let a = arena.alloc()?;
//! let b = arena.alloc()?;
//! // SAFETY: a and b are counted references from this arena; store_link
//! // installs a counted link from the unpublished node `a` to `b`.
//! unsafe {
//!     arena.store_link(&(*a).next, b);
//!     arena.release(b); // our reference; the link keeps b alive
//!     arena.release(a); // cascades: reclaims a, then b
//! }
//! assert_eq!(arena.live_nodes(), 0);
//! # Ok::<(), valois_mem::AllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod buddy;
pub mod defer;
pub mod epoch;
pub(crate) mod magazine;
pub mod managed;
pub mod reclaim;
pub mod segtable;
pub mod stats;

pub use arena::{AllocError, Arena, ArenaConfig, EpochGuard};
pub use buddy::{Block, BuddyAllocator, BuddyExhausted};
pub use defer::DeferredReleases;
pub use epoch::EpochDomain;
pub use managed::{Link, Managed, NodeHeader, ReclaimedLinks, MAX_LINKS};
pub use reclaim::{Epoch, Reclaimer, RefCount};
pub use segtable::SegmentTable;
pub use stats::{MemStats, MemTally};
