//! Epoch-based grace periods for the [`Epoch`](crate::reclaim::Epoch)
//! reclamation backend.
//!
//! One [`EpochDomain`] lives inside every [`Arena`](crate::Arena) (inert
//! under the refcount backend). It provides three things:
//!
//! 1. **Pins.** A thread calls [`EpochDomain::pin`] once per *operation*
//!    (cursor lifetime), publishing `(epoch, count)` in a per-thread slot,
//!    and [`EpochDomain::unpin`] when done. While pinned, the thread may
//!    follow counted links with plain loads — no per-hop RMWs.
//! 2. **Limbo.** When a node's link in-degree reaches zero the arena
//!    *retires* it here ([`EpochDomain::retire`]): the node is stamped with
//!    the current global epoch and pushed onto a lock-free Treiber stack
//!    threaded through the node header's dedicated `limbo_next` word. Its
//!    payload and outgoing links stay **intact** — pinned readers may still
//!    be standing on it or traverse *through* it (the paper's §2.2 cell
//!    persistence, now provided by the grace period instead of counts).
//! 3. **Advance/collect.** [`EpochDomain::try_advance`] moves the global
//!    epoch forward when every pinned slot has caught up with it; the
//!    arena's collector (`Arena::advance_and_collect`) then frees limbo
//!    nodes whose grace period has elapsed.
//!
//! # The grace-period rule (invariant I12, PROTOCOL.md)
//!
//! A node retired at observed global epoch `e` may be freed only when
//!
//! ```text
//! e + 2 <= min(global_epoch, every pinned slot's epoch)
//! ```
//!
//! The *two*-epoch lag (not one) is what makes the happens-before argument
//! close. Sketch (full argument in PROTOCOL.md): the advance `e+1 -> e+2`
//! can only succeed after every slot pinned at an epoch `<= e` has
//! unpinned, and the scan's acquire read of each such slot synchronizes
//! with that unpin's release — so the retiree's *unlink* (which preceded
//! its retirement, itself sequenced before the unpin) happens-before the
//! advance. Any reader that subsequently pins at `>= e+2` read the global
//! epoch from that advance's RMW (acquire), so the unlink happens-before
//! all of its traversal loads: it can never load a link value that still
//! points at the retired node. Readers pinned at `<= e+1` may well reach
//! the node — and they are exactly the ones the `min` above waits for.
//! A one-epoch lag has neither property: a reader pinning at `e+1`
//! concurrently with the collector's scan could hold a stale link to the
//! node with no ordering forcing it to see the unlink.
//!
//! With **no** thread pinned the rule still goes through `global_epoch`
//! (never "horizon = infinity"): the collector first *advances* until
//! `global >= e + 2`, and a future reader's pin reads the global word from
//! those advance RMWs, inheriting the same happens-before edge.
//!
//! # Liveness, not safety
//!
//! A stalled reader pinning an old epoch never makes the scheme unsafe —
//! it only stops the horizon. That surfaces as reclaim pressure:
//! [`EpochDomain::limbo_depth`] and [`EpochDomain::pin_lag`] are exported
//! through `MemStats` so a capped arena's `AllocError` under the epoch
//! backend is diagnosable (see `Arena::alloc` and the regression test
//! `stalled_pin_surfaces_as_reclaim_pressure`).

use std::fmt;

use valois_sync::pad::CachePadded;
use valois_sync::shim::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use crate::managed::Managed;

/// Number of pin slots (power of two). Threads hash in by
/// `valois_sync::sharded::thread_index`; collisions are handled by the
/// conservative count/epoch merge in [`EpochDomain::pin`].
#[cfg(not(loom))]
pub(crate) const PIN_SLOTS: usize = 16;
/// Collapsed under loom so the model checker explores slot sharing.
#[cfg(loom)]
pub(crate) const PIN_SLOTS: usize = 1;

/// Retires between collection attempts on the retire path.
#[cfg(not(loom))]
pub(crate) const COLLECT_EVERY: usize = 64;
#[cfg(loom)]
pub(crate) const COLLECT_EVERY: usize = 1;

/// Low bits of a slot word hold the pin count; the rest hold the epoch.
/// 12 bits allow 4095 simultaneous pins per slot (nested or colliding
/// threads) before overflow — far beyond the one-pin-per-operation model.
const COUNT_BITS: u32 = 12;
const COUNT_MASK: usize = (1 << COUNT_BITS) - 1;

#[inline]
fn slot_epoch(word: usize) -> usize {
    word >> COUNT_BITS
}

#[inline]
fn slot_count(word: usize) -> usize {
    word & COUNT_MASK
}

#[inline]
fn pack(epoch: usize, count: usize) -> usize {
    debug_assert!(count <= COUNT_MASK, "pin count overflow");
    (epoch << COUNT_BITS) | count
}

/// Per-arena epoch state: the global epoch, the pin slots, and the limbo
/// stack of retired nodes awaiting their grace period.
pub struct EpochDomain<N: Managed> {
    /// The global epoch. Starts at 2 so `retire_epoch + 2 <= global` can
    /// never be satisfied by an uninitialized zero stamp.
    global: CachePadded<AtomicUsize>,
    /// Pin slots: `(epoch << COUNT_BITS) | count`, count 0 = unpinned.
    slots: Box<[CachePadded<AtomicUsize>]>,
    /// Treiber stack of retired nodes, chained through
    /// `NodeHeader::limbo_next` (a dedicated word — `free_link` aliases
    /// `next`, which must stay intact for pinned readers).
    limbo_head: CachePadded<AtomicUsize>,
    /// Nodes currently in limbo (gauge; exact under quiescence).
    limbo_len: AtomicUsize,
    /// Outermost pins taken (counter).
    pins: AtomicU64,
    /// Successful global-epoch advances (counter).
    advances: AtomicU64,
    /// Nodes retired into limbo (counter).
    retires: AtomicU64,
    /// Limbo nodes whose grace period elapsed and were freed (counter).
    frees: AtomicU64,
    _marker: std::marker::PhantomData<fn() -> N>,
}

impl<N: Managed> Default for EpochDomain<N> {
    fn default() -> Self {
        Self {
            global: CachePadded::new(AtomicUsize::new(2)),
            slots: (0..PIN_SLOTS)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            limbo_head: CachePadded::new(AtomicUsize::new(0)),
            limbo_len: AtomicUsize::new(0),
            pins: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            retires: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<N: Managed> EpochDomain<N> {
    /// The current thread's slot.
    #[inline]
    fn slot(&self) -> &AtomicUsize {
        &self.slots[valois_sync::sharded::thread_index() & (PIN_SLOTS - 1)]
    }

    /// The current global epoch.
    #[inline]
    pub fn global_epoch(&self) -> usize {
        // ORDER: SeqCst — participates in the I12 total order with pin
        // CASes and advance scans.
        self.global.load(Ordering::SeqCst)
    }

    /// Pins the current thread: publishes `(global_epoch, 1)` in its slot
    /// (or bumps the count of an existing pin, keeping the *older* epoch —
    /// the conservative merge that makes slot collisions and reentrancy
    /// safe). Returns the epoch pinned at.
    ///
    /// Must be balanced by exactly one [`EpochDomain::unpin`]. Pointers
    /// read under a pin must not be used after the matching unpin.
    pub fn pin(&self) -> usize {
        let slot = self.slot();
        // WAIT-FREE: a failed CAS means another pin/unpin on this shared
        // slot made progress; retries are bounded by slot sharers.
        loop {
            // ORDER: SeqCst — the slot read joins the pin/scan total
            // order (I12): a zero read here that races an advance scan is
            // resolved by the publication CAS below, never by this load.
            let s = slot.load(Ordering::SeqCst);
            if slot_count(s) == 0 {
                let e = self.global_epoch();
                // ORDER: SeqCst RMW — the pin publication must be totally
                // ordered against advance scans (I12): either the scan
                // sees this pin (and the horizon waits for us), or this
                // CAS follows the scan in the SeqCst order and our
                // subsequent loads see every unlink that preceded the
                // advance we read `e` from.
                if slot
                    .compare_exchange(s, pack(e, 1), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    self.pins.fetch_add(1, Ordering::Relaxed);
                    valois_trace::probe!(EpochPin, e, slot_count(s) + 1);
                    return e;
                }
            } else {
                // Nested or colliding pin: keep the existing (older or
                // equal) epoch — strictly more conservative, so safe.
                // ORDER: AcqRel — the count bump need not join the SeqCst
                // order; the slot's epoch is already published.
                if slot
                    .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return slot_epoch(s);
                }
            }
        }
    }

    /// Releases one pin taken by [`EpochDomain::pin`].
    pub fn unpin(&self) {
        let slot = self.slot();
        // WAIT-FREE: a failed CAS means another pin/unpin on this shared
        // slot made progress; retries are bounded by slot sharers.
        loop {
            let s = slot.load(Ordering::Acquire);
            debug_assert!(slot_count(s) > 0, "unpin without matching pin");
            let next = if slot_count(s) == 1 { 0 } else { s - 1 };
            // ORDER: AcqRel — the release half publishes every traversal
            // load before the slot reads as unpinned, so an advance scan
            // that observes the unpin happens-after our last use of any
            // protected node (the unpin side of I12's synchronization).
            if slot
                .compare_exchange(s, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Whether the current thread's slot holds at least one pin (the slot
    /// may be shared, so this is necessary-not-sufficient — good enough
    /// for the debug assertions on the plain-read path).
    pub fn current_thread_pinned(&self) -> bool {
        slot_count(self.slot().load(Ordering::Acquire)) > 0
    }

    /// Tries to advance the global epoch by one. Succeeds only when every
    /// pinned slot has caught up with the current epoch. Returns the new
    /// epoch on success.
    pub fn try_advance(&self) -> Option<usize> {
        // INVARIANT: I12
        // ORDER: SeqCst fence — globally orders this scan's slot loads
        // against pin-publication CASes: any pin this scan misses is
        // later in the SeqCst order and will observe (via its
        // global-epoch read) every unlink that precedes the advance
        // below.
        fence(Ordering::SeqCst);
        let g = self.global_epoch();
        for slot in self.slots.iter() {
            // ORDER: SeqCst — the scan side of the pin/scan total order
            // (I12); an Acquire load could legally miss a pin whose CAS
            // the fence above already ordered before us.
            let s = slot.load(Ordering::SeqCst);
            if slot_count(s) != 0 && slot_epoch(s) != g {
                return None;
            }
        }
        // ORDER: SeqCst RMW — publishes the new epoch; a pin that reads it
        // acquires everything that happened-before this advance,
        // including every unlink ordered by the scan above.
        if self
            .global
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.advances.fetch_add(1, Ordering::Relaxed);
            valois_trace::probe!(EpochAdvance, g + 1);
            Some(g + 1)
        } else {
            None
        }
    }

    /// The reclamation horizon: `min(global_epoch, every pinned epoch)`.
    /// A limbo node is freeable iff `retire_epoch + 2 <= horizon()` (I12).
    pub fn horizon(&self) -> usize {
        // INVARIANT: I12
        // ORDER: SeqCst fence — globally orders the slot loads below
        // against pin-publication CASes, exactly as in `try_advance`: a
        // pin missed by this scan is later in the SeqCst order, so its
        // stamp is >= the global epoch read here and cannot undercut the
        // returned horizon.
        fence(Ordering::SeqCst);
        let mut h = self.global_epoch();
        for slot in self.slots.iter() {
            // ORDER: SeqCst — scan side of the pin/scan total order
            // (I12); see `try_advance`.
            let s = slot.load(Ordering::SeqCst);
            if slot_count(s) != 0 {
                h = h.min(slot_epoch(s));
            }
        }
        h
    }

    /// Retires a claimed node into limbo, stamped with the current global
    /// epoch. The node's payload and outgoing counted links are left
    /// intact (pinned readers may still traverse them); they are drained
    /// by the collector once the grace period elapses.
    ///
    /// Returns the number of retires since the last collection hint, so
    /// the caller can amortize `advance_and_collect` (see
    /// [`COLLECT_EVERY`]).
    ///
    /// # Safety
    ///
    /// The caller must hold the node's claim (won via `try_claim` at
    /// count zero, or a quiescent `set_claim`), and must not touch the
    /// node afterwards — ownership passes to the limbo list.
    // GUARD: p — caller holds the claim; ownership transfers to limbo at
    // the successful CAS below.
    pub unsafe fn retire(&self, p: *mut N) -> u64 {
        debug_assert!((*p).header().claim_is_set(), "retire requires the claim");
        (*p).header().set_retire_epoch(self.global_epoch());
        // Treiber push through the dedicated limbo_next word.
        // WAIT-FREE: a failed CAS means another retire landed — progress.
        loop {
            let head = self.limbo_head.load(Ordering::Acquire);
            (*p).header().set_limbo_next(head);
            // ORDER: AcqRel on success — publishes the node's retire stamp
            // and limbo link before the collector can take the chain.
            if self
                .limbo_head
                .compare_exchange(head, p as usize, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        self.limbo_len.fetch_add(1, Ordering::Relaxed);
        self.retires.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Detaches the entire limbo chain for a private walk. The caller
    /// (the arena's collector) must re-splice survivors via
    /// [`EpochDomain::requeue`] and report frees via
    /// [`EpochDomain::note_freed`].
    pub(crate) fn take_limbo(&self) -> *mut N {
        // ORDER: AcqRel — acquires every retire's publication (stamp +
        // payload) before the walk dereferences the chain.
        self.limbo_head.swap(0, Ordering::AcqRel) as *mut N
    }

    /// Pushes a not-yet-freeable node back onto limbo (same mechanics as
    /// retire, but the original epoch stamp is preserved and the gauge is
    /// untouched — the node never logically left limbo).
    ///
    /// # Safety
    ///
    /// `p` must have come from [`EpochDomain::take_limbo`] on this domain
    /// during the current collection walk.
    // GUARD: p — caller owns the detached limbo node; ownership returns
    // to the limbo list at the successful CAS below.
    pub(crate) unsafe fn requeue(&self, p: *mut N) {
        // WAIT-FREE: a failed CAS means another retire/requeue landed —
        // progress.
        loop {
            let head = self.limbo_head.load(Ordering::Acquire);
            (*p).header().set_limbo_next(head);
            if self
                .limbo_head
                .compare_exchange(head, p as usize, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Records `n` limbo nodes freed by the collector.
    pub(crate) fn note_freed(&self, n: usize) {
        if n > 0 {
            self.limbo_len.fetch_sub(n, Ordering::Relaxed);
            self.frees.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Nodes currently awaiting their grace period (reclaim-pressure
    /// gauge).
    pub fn limbo_depth(&self) -> usize {
        self.limbo_len.load(Ordering::Relaxed)
    }

    /// How far the oldest pinned thread lags the global epoch (0 when
    /// nothing is pinned or everyone is current). A large, persistent lag
    /// means a stalled reader is blocking reclamation.
    pub fn pin_lag(&self) -> usize {
        let g = self.global_epoch();
        let mut oldest = g;
        for slot in self.slots.iter() {
            // ORDER: SeqCst — same scan discipline as `horizon` (I12);
            // the gauge must never under-report a pin the collector
            // would have to respect.
            let s = slot.load(Ordering::SeqCst);
            if slot_count(s) != 0 {
                oldest = oldest.min(slot_epoch(s));
            }
        }
        g - oldest
    }

    /// Counter snapshot: `(pins, advances, retires, frees)`.
    pub(crate) fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.pins.load(Ordering::Relaxed),
            self.advances.load(Ordering::Relaxed),
            self.retires.load(Ordering::Relaxed),
            self.frees.load(Ordering::Relaxed),
        )
    }
}

impl<N: Managed> fmt::Debug for EpochDomain<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochDomain")
            .field("global", &self.global_epoch())
            .field("limbo_depth", &self.limbo_depth())
            .field("pin_lag", &self.pin_lag())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::managed::{Link, NodeHeader, ReclaimedLinks};

    #[derive(Default)]
    struct TestNode {
        header: NodeHeader,
        next: Link<TestNode>,
    }

    impl Managed for TestNode {
        fn header(&self) -> &NodeHeader {
            &self.header
        }
        fn free_link(&self) -> &Link<Self> {
            &self.next
        }
        fn drain_links(&self) -> ReclaimedLinks<Self> {
            let mut links = ReclaimedLinks::new();
            links.push(self.next.swap(std::ptr::null_mut()));
            links
        }
        fn reset_for_alloc(&self) {
            self.next.write(std::ptr::null_mut());
        }
    }

    #[test]
    fn pin_blocks_advance_until_unpin() {
        let d: EpochDomain<TestNode> = EpochDomain::default();
        let g0 = d.global_epoch();
        let e = d.pin();
        assert_eq!(e, g0);
        // Pinned at the current epoch: one advance is allowed (we are
        // current) ...
        assert_eq!(d.try_advance(), Some(g0 + 1));
        // ... but a second is not, until we catch up.
        assert_eq!(d.try_advance(), None);
        assert_eq!(d.pin_lag(), 1);
        d.unpin();
        assert_eq!(d.try_advance(), Some(g0 + 2));
        assert_eq!(d.pin_lag(), 0);
    }

    #[test]
    fn nested_pin_keeps_older_epoch() {
        let d: EpochDomain<TestNode> = EpochDomain::default();
        let e1 = d.pin();
        d.try_advance();
        let e2 = d.pin(); // nested: must keep the older pinned epoch
        assert_eq!(e2, e1);
        assert_eq!(d.horizon(), e1);
        d.unpin();
        d.unpin();
        assert_eq!(d.horizon(), d.global_epoch());
    }

    #[test]
    fn horizon_is_min_of_global_and_pins() {
        let d: EpochDomain<TestNode> = EpochDomain::default();
        assert_eq!(d.horizon(), d.global_epoch());
        let e = d.pin();
        d.try_advance();
        assert_eq!(d.horizon(), e);
        assert_eq!(d.global_epoch(), e + 1);
        d.unpin();
    }

    #[test]
    fn retire_take_requeue_roundtrip() {
        let d: EpochDomain<TestNode> = EpochDomain::default();
        let mut a = TestNode::default();
        let mut b = TestNode::default();
        let (pa, pb) = (&mut a as *mut TestNode, &mut b as *mut TestNode);
        unsafe {
            d.retire(pa);
            d.retire(pb);
        }
        assert_eq!(d.limbo_depth(), 2);
        let mut seen = Vec::new();
        let mut p = d.take_limbo();
        while !p.is_null() {
            let next = unsafe { (*p).header().limbo_next() } as *mut TestNode;
            seen.push(p);
            p = next;
        }
        assert_eq!(seen, vec![pb, pa], "LIFO order");
        assert_eq!(d.take_limbo(), std::ptr::null_mut());
        unsafe { d.requeue(pa) };
        assert_eq!(d.limbo_depth(), 2, "requeue does not change the gauge");
        d.note_freed(1);
        assert_eq!(d.limbo_depth(), 1);
        let (_, _, retires, frees) = d.counters();
        assert_eq!(retires, 2);
        assert_eq!(frees, 1);
    }
}
