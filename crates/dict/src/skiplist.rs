//! The skip-list dictionary (paper §4.1).
//!
//! "We can implement a lock-free skip list \[24\] as a collection of k
//! sorted singly-linked lists, such that higher level lists contain a
//! subset of the cells in lower level lists. As in \[23\], insertions and
//! deletions are performed one level at a time, insertions starting with
//! the bottom level and working up, and deletions starting at the top and
//! working down."
//!
//! Cells are *towers* shared by every level they belong to (the "subset of
//! the cells" phrasing); each level is an independent Valois list — with
//! its own per-level auxiliary nodes, back links, and the §3 algorithms
//! generalized to indexed links. The two dummy cells are shared across all
//! levels.
//!
//! Membership is defined by the bottom list: a key is in the dictionary
//! iff its cell is in level 0. Upper levels are an index; a cell removed
//! at level 0 but still visible above (an in-flight top-down deletion or a
//! stalled bottom-up insertion) only costs extra hops, never correctness.

use std::fmt;
use std::mem::MaybeUninit;
use valois_sync::shim::atomic::{fence, AtomicU64, AtomicU8, Ordering};
use valois_sync::shim::cell::UnsafeCell;
use valois_sync::Backoff;

use valois_mem::{Arena, ArenaConfig, Link, Managed, MemStats, NodeHeader, ReclaimedLinks};

use crate::traits::Dictionary;

/// Number of levels. With promotion probability 1/2 this comfortably
/// indexes ~10⁵–10⁶ items (the paper chooses k = Θ(log N)).
pub const MAX_LEVELS: usize = 12;

// A max-level tower reports 2 * MAX_LEVELS counted links (next + back_link
// per level) when reclaimed; `ReclaimedLinks` hard-caps at
// `valois_mem::MAX_LINKS` and panics past it, so raising MAX_LEVELS without
// raising the cap must fail at compile time, not at the first reclaimed
// max tower in production.
const _: () = assert!(
    2 * MAX_LEVELS <= valois_mem::MAX_LINKS,
    "a max-level tower's drained links must fit in ReclaimedLinks"
);

const KIND_FREE: u8 = 0;
const KIND_AUX: u8 = 1;
const KIND_CELL: u8 = 2;
const KIND_FIRST: u8 = 3;
const KIND_LAST: u8 = 4;

/// A skip-list node: a tower cell (key/value + one list membership per
/// level), a per-level auxiliary node (uses `next[0]` only), or a shared
/// dummy.
struct SkipNode<K, V> {
    header: NodeHeader,
    kind: AtomicU8,
    /// For cells: number of levels the tower spans (1..=MAX_LEVELS).
    level: AtomicU8,
    next: [Link<SkipNode<K, V>>; MAX_LEVELS],
    back_link: [Link<SkipNode<K, V>>; MAX_LEVELS],
    key: UnsafeCell<MaybeUninit<K>>,
    value: UnsafeCell<MaybeUninit<V>>,
}

// SAFETY: key/value slots are accessed only under the §5 ownership rules
// (exclusive at init/drain; shared reads while counted and kind == CELL).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipNode<K, V> {}
// SAFETY: as above — shared reads require a counted reference.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipNode<K, V> {}

impl<K, V> Default for SkipNode<K, V> {
    fn default() -> Self {
        Self {
            header: NodeHeader::new_free(),
            kind: AtomicU8::new(KIND_FREE),
            level: AtomicU8::new(0),
            next: std::array::from_fn(|_| Link::null()),
            back_link: std::array::from_fn(|_| Link::null()),
            key: UnsafeCell::new(MaybeUninit::uninit()),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

impl<K, V> SkipNode<K, V> {
    fn kind(&self) -> u8 {
        self.kind.load(Ordering::Acquire)
    }

    fn is_aux(&self) -> bool {
        self.kind() == KIND_AUX
    }

    fn is_normal_cell(&self) -> bool {
        matches!(self.kind(), KIND_CELL | KIND_FIRST | KIND_LAST)
    }

    /// An aux node's outgoing link lives in `next[0]` regardless of the
    /// level it serves; cells and dummies use `next[lvl]`.
    fn out_link(&self, lvl: usize) -> &Link<SkipNode<K, V>> {
        if self.is_aux() {
            &self.next[0]
        } else {
            &self.next[lvl]
        }
    }

    /// # Safety
    /// Counted reference held; kind == CELL.
    unsafe fn key(&self) -> &K {
        (*self.key.get()).assume_init_ref()
    }

    /// # Safety
    /// Counted reference held; kind == CELL.
    unsafe fn value(&self) -> &V {
        (*self.value.get()).assume_init_ref()
    }
}

impl<K: Send + Sync, V: Send + Sync> Managed for SkipNode<K, V> {
    fn header(&self) -> &NodeHeader {
        &self.header
    }

    fn free_link(&self) -> &Link<Self> {
        &self.next[0]
    }

    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        for l in &self.next {
            links.push(l.swap(std::ptr::null_mut()));
        }
        for l in &self.back_link {
            links.push(l.swap(std::ptr::null_mut()));
        }
        debug_assert!(
            links.len() <= valois_mem::MAX_LINKS,
            "skip tower drained {} links, over the MAX_LINKS cap",
            links.len()
        );
        if self.kind() == KIND_CELL {
            // SAFETY: claim winner at count zero — exclusive.
            unsafe {
                (*self.key.get()).assume_init_drop();
                (*self.value.get()).assume_init_drop();
            }
        }
        self.kind.store(KIND_FREE, Ordering::Release);
        links
    }

    fn reset_for_alloc(&self) {
        // next[0] held the free-list link (count transferred at pop).
        for l in &self.next {
            l.write(std::ptr::null_mut());
        }
        for l in &self.back_link {
            l.write(std::ptr::null_mut());
        }
        self.level.store(0, Ordering::Relaxed);
        debug_assert_eq!(self.kind(), KIND_FREE);
    }
}

/// A per-level cursor: the §3 triple specialized to level `lvl`'s links.
struct LevelCursor<K, V> {
    target: *mut SkipNode<K, V>,
    pre_aux: *mut SkipNode<K, V>,
    pre_cell: *mut SkipNode<K, V>,
}

/// A non-blocking skip-list dictionary (paper §4.1).
///
/// # Example
///
/// ```
/// use valois_dict::{Dictionary, SkipListDict};
///
/// let d: SkipListDict<u64, u64> = SkipListDict::new();
/// for k in 0..100 {
///     d.insert(k, k);
/// }
/// assert!(d.contains(&42));
/// assert!(d.remove(&42));
/// assert!(!d.contains(&42));
/// ```
pub struct SkipListDict<K: Send + Sync, V: Send + Sync> {
    arena: Arena<SkipNode<K, V>>,
    first_root: Link<SkipNode<K, V>>,
    last_root: Link<SkipNode<K, V>>,
    first: *mut SkipNode<K, V>,
    last: *mut SkipNode<K, V>,
    rng_state: AtomicU64,
    retries: AtomicU64,
}

// SAFETY: raw pointer fields are immutable after construction; all shared
// state flows through the arena protocol.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipListDict<K, V> {}
// SAFETY: as above — all shared mutation is CAS on counted links.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipListDict<K, V> {}

impl<K, V> SkipListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    /// Creates an empty skip list with the default arena configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Creates an empty skip list with `config`.
    pub fn with_config(config: ArenaConfig) -> Self {
        let config = ArenaConfig {
            initial_capacity: config.initial_capacity.max(MAX_LEVELS + 8),
            ..config
        };
        let arena: Arena<SkipNode<K, V>> = Arena::with_config(config);
        let first = arena.alloc().expect("pool too small");
        let last = arena.alloc().expect("pool too small");
        let dict = Self {
            arena,
            first_root: Link::null(),
            last_root: Link::null(),
            first,
            last,
            rng_state: AtomicU64::new(0x853c_49e6_748f_ea9b),
            retries: AtomicU64::new(0),
        };
        // SAFETY: single-threaded construction; fresh exclusive nodes.
        unsafe {
            (*first).kind.store(KIND_FIRST, Ordering::Release);
            (*first).level.store(MAX_LEVELS as u8, Ordering::Relaxed);
            (*last).kind.store(KIND_LAST, Ordering::Release);
            (*last).level.store(MAX_LEVELS as u8, Ordering::Relaxed);
            dict.arena.store_link(&dict.first_root, first);
            dict.arena.store_link(&dict.last_root, last);
            // One auxiliary node per level between the dummies (Fig. 4, k
            // times over).
            for lvl in 0..MAX_LEVELS {
                let aux = dict.arena.alloc().expect("pool too small");
                (*aux).kind.store(KIND_AUX, Ordering::Release);
                dict.arena.store_link(&(*aux).next[0], last);
                dict.arena.store_link(&(*first).next[lvl], aux);
                dict.arena.release(aux);
            }
            dict.arena.release(first);
            dict.arena.release(last);
        }
        dict
    }

    /// Geometric tower height in 1..=MAX_LEVELS (p = 1/2), from a lock-free
    /// splitmix64 stream.
    fn random_level(&self) -> usize {
        let mut z = self
            .rng_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z.trailing_ones() as usize) + 1).min(MAX_LEVELS)
    }

    // ------------------------------------------------------------------
    // Per-level §3 algorithms (Figs. 5, 6, 7, 9, 10 with indexed links).
    // Every unsafe block relies on the valois-core cursor invariants:
    // dereferenced pointers are counted references; links passed to
    // safe_read/swing are counted links of `self.arena`.
    // ------------------------------------------------------------------

    /// Fig. 6 `First` at `lvl`, entering from `from` — a held cell known to
    /// be a member of level `lvl`'s list (the descent entry point).
    ///
    /// # Safety
    ///
    /// `from` must be a counted reference to a cell in level `lvl`'s list.
    // GUARD: from — caller holds a count on the entry cell across the call.
    // COUNT: the counts acquired here are transferred into the returned
    // cursor; `release_cursor` (or `next`/`update` swaps) release them.
    unsafe fn cursor_at(&self, lvl: usize, from: *mut SkipNode<K, V>) -> LevelCursor<K, V> {
        self.arena.incr_ref(from);
        let mut c = LevelCursor {
            pre_cell: from,
            pre_aux: self.arena.safe_read((*from).out_link(lvl)),
            target: std::ptr::null_mut(),
        };
        self.update(lvl, &mut c);
        c
    }

    /// Fig. 5 `Update` at `lvl`.
    ///
    /// # Safety
    ///
    /// `c` must hold counted references obtained from this arena at `lvl`.
    unsafe fn update(&self, lvl: usize, c: &mut LevelCursor<K, V>) {
        if (*c.pre_aux).out_link(lvl).read() == c.target {
            return;
        }
        let mut p = c.pre_aux;
        let mut n = self.arena.safe_read((*p).out_link(lvl));
        self.arena.release(c.target);
        // WAIT-FREE: bounded by the aux-chain length; the collapse CAS is
        // one-shot per pair and its failure (someone else advanced) is
        // ignored, never retried in place.
        while !n.is_null() && (*n).is_aux() {
            let _ = self.arena.swing((*c.pre_cell).out_link(lvl), p, n);
            self.arena.release(p);
            p = n;
            n = self.arena.safe_read((*p).out_link(lvl));
        }
        debug_assert!(!n.is_null());
        c.pre_aux = p;
        c.target = n;
    }

    /// Fig. 10 lines 7-11 at `lvl`: walk `back_link[lvl]`s from `from` to
    /// the nearest cell not itself deleted at this level (shared by
    /// `try_delete`'s recovery and `resume`).
    ///
    /// # Safety
    ///
    /// `from` must carry a count this call may consume.
    // GUARD: from — caller holds a count when calling; the walk hands it
    // off hop by hop (consumed here, replaced by the returned cell's).
    // COUNT: consumes the caller's count on `from`; the returned pointer
    // carries one count that transfers to the caller.
    unsafe fn backtrack(&self, lvl: usize, from: *mut SkipNode<K, V>) -> *mut SkipNode<K, V> {
        let mut p = from;
        while !(*p).back_link[lvl].read().is_null() {
            let q = self.arena.safe_read(&(*p).back_link[lvl]);
            if q.is_null() {
                break; // back_links are never cleared while p is held
            }
            self.arena.release(p);
            p = q;
        }
        p
    }

    /// [`Cursor::resume`](valois_core::Cursor::resume) at `lvl`: when the
    /// cursor's anchor was deleted at this level, back-walk to the
    /// nearest undeleted predecessor before revalidating —
    /// O(distance-to-conflict) instead of O(level length).
    ///
    /// # Safety
    ///
    /// `c` must hold counted references obtained from this arena at `lvl`.
    // INVARIANT: I10
    unsafe fn resume(&self, lvl: usize, c: &mut LevelCursor<K, V>) {
        if !(*c.pre_cell).back_link[lvl].read().is_null() {
            // COUNT: `backtrack` consumes the cursor's count on the old
            // `pre_cell` and its returned count is stored back into
            // `pre_cell` (released by `release_cursor`).
            let p = self.backtrack(lvl, c.pre_cell);
            c.pre_cell = p;
            self.arena.release(c.pre_aux);
            c.pre_aux = self.arena.safe_read((*p).out_link(lvl));
            self.arena.release(c.target);
            c.target = std::ptr::null_mut();
        }
        self.update(lvl, c);
    }

    /// Fig. 7 `Next` at `lvl`.
    ///
    /// # Safety
    ///
    /// `c` must hold counted references obtained from this arena at `lvl`.
    unsafe fn next(&self, lvl: usize, c: &mut LevelCursor<K, V>) -> bool {
        if c.target == self.last {
            return false;
        }
        self.arena.release(c.pre_cell);
        self.arena.incr_ref(c.target);
        c.pre_cell = c.target;
        self.arena.release(c.pre_aux);
        c.pre_aux = self.arena.safe_read((*c.target).out_link(lvl));
        self.update(lvl, c);
        true
    }

    /// Fig. 11 `FindFrom` at `lvl`: advance until target key ≥ `key`.
    /// Returns true iff the target is a cell with key == `key`.
    ///
    /// # Safety
    ///
    /// `c` must hold counted references obtained from this arena at `lvl`.
    unsafe fn find_from(&self, lvl: usize, c: &mut LevelCursor<K, V>, key: &K) -> bool {
        loop {
            if c.target == self.last {
                return false;
            }
            if (*c.target).kind() == KIND_CELL {
                let k = (*c.target).key();
                if k == key {
                    return true;
                }
                if k > key {
                    return false;
                }
            }
            if !self.next(lvl, c) {
                return false;
            }
        }
    }

    /// Fig. 9 `TryInsert` at `lvl`: link (already initialized) `cell` with
    /// fresh `aux` before the cursor's target.
    ///
    /// # Safety
    ///
    /// `c`, `cell`, and `aux` must be counted references; `cell` and `aux`
    /// must be unpublished at `lvl` (this call is their only linker).
    // GUARD: cell, aux — caller holds a count on each across the call.
    unsafe fn try_insert(
        &self,
        lvl: usize,
        c: &LevelCursor<K, V>,
        cell: *mut SkipNode<K, V>,
        aux: *mut SkipNode<K, V>,
    ) -> bool {
        self.arena.store_link(&(*cell).next[lvl], aux);
        self.arena.store_link(&(*aux).next[0], c.target);
        self.arena.swing((*c.pre_aux).out_link(lvl), c.target, cell)
    }

    /// Fig. 10 `TryDelete` at `lvl`.
    ///
    /// # Safety
    ///
    /// `c` must hold counted references obtained from this arena at `lvl`.
    unsafe fn try_delete(&self, lvl: usize, c: &mut LevelCursor<K, V>) -> bool {
        if c.target == self.last {
            return false;
        }
        let d = c.target;
        let first_n = self.arena.safe_read(&(*d).next[lvl]);
        debug_assert!(!first_n.is_null());
        if !self.arena.swing((*c.pre_aux).out_link(lvl), d, first_n) {
            self.arena.release(first_n);
            return false;
        }
        // Back link for this level's recovery walk (Fig. 10 line 6).
        debug_assert!((*d).back_link[lvl].read().is_null());
        self.arena.incr_ref(c.pre_cell);
        (*d).back_link[lvl].write(c.pre_cell);
        // Fig. 10 lines 7-11: back to a cell not deleted at this level
        // (shared with `resume`).
        // COUNT: the incr_ref's count is consumed by `backtrack`, which
        // hands back one count on `p` (released at the end).
        self.arena.incr_ref(c.pre_cell);
        let p = self.backtrack(lvl, c.pre_cell);
        // Fig. 10 line 12.
        let mut s = self.arena.safe_read((*p).out_link(lvl));
        // Fig. 10 lines 13-16: advance n to the end of the aux chain.
        let mut n = first_n;
        loop {
            let nn = self.arena.safe_read((*n).out_link(lvl));
            debug_assert!(!nn.is_null());
            let cont = !(*nn).is_normal_cell();
            if !cont {
                self.arena.release(nn);
                break;
            }
            self.arena.release(n);
            n = nn;
        }
        // Fig. 10 lines 17-21.
        // WAIT-FREE: a failed swing means p's link changed — another
        // deleter or inserter made system-wide progress — and the two
        // guards below break out once p is itself deleted or the chain
        // grew past n, so this loop never spins without global progress.
        loop {
            if self.arena.swing((*p).out_link(lvl), s, n) {
                break;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.arena.release(s);
            s = self.arena.safe_read((*p).out_link(lvl));
            if !(*p).back_link[lvl].read().is_null() {
                break;
            }
            let nn = self.arena.safe_read((*n).out_link(lvl));
            let extended = !(*nn).is_normal_cell();
            self.arena.release(nn);
            if extended {
                break;
            }
        }
        self.arena.release(p);
        self.arena.release(s);
        self.arena.release(n);
        true
    }

    /// Releases all three counted references a cursor holds.
    ///
    /// # Safety
    ///
    /// `c`'s references must be live counts on this arena's nodes.
    unsafe fn release_cursor(&self, c: LevelCursor<K, V>) {
        self.arena.release(c.target);
        self.arena.release(c.pre_aux);
        self.arena.release(c.pre_cell);
    }

    /// Descends from the top level to level 0, returning a level-0 cursor
    /// positioned at the first key ≥ `key`. If `saved` is given, records a
    /// counted entry cell per level (index = level) for bottom-up
    /// insertion.
    ///
    /// The descent entry point at each level is the previous level's
    /// `pre_cell` — a cell (or the first dummy) with key < `key` that, by
    /// the subset property, is also a member of every lower level.
    ///
    /// # Safety
    ///
    /// The dictionary must be alive (roots counted). The returned cursor —
    /// and every pointer written into `saved` — is a counted reference the
    /// caller must release.
    unsafe fn descend(
        &self,
        key: &K,
        mut saved: Option<&mut Vec<*mut SkipNode<K, V>>>,
    ) -> LevelCursor<K, V> {
        if let Some(s) = saved.as_deref_mut() {
            s.resize(MAX_LEVELS, std::ptr::null_mut());
        }
        let mut entry = self.first;
        self.arena.incr_ref(entry);
        for lvl in (0..MAX_LEVELS).rev() {
            let mut c = self.cursor_at(lvl, entry);
            self.arena.release(entry);
            let _ = self.find_from(lvl, &mut c, key);
            if lvl == 0 {
                return c;
            }
            if let Some(s) = saved.as_deref_mut() {
                self.arena.incr_ref(c.pre_cell);
                s[lvl] = c.pre_cell;
            }
            entry = c.pre_cell;
            self.arena.incr_ref(entry);
            self.release_cursor(c);
        }
        unreachable!("loop always returns at lvl 0")
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        self.insert_with_height(key, value, self.random_level())
    }

    /// Inserts with an explicit tower height instead of a random one.
    ///
    /// This is a test hook: the shim/loom models need deterministic tower
    /// heights to pin the insert-vs-remove interleaving (`random_level`
    /// draws from a thread-local stream the scheduler cannot replay).
    /// `height` is clamped to `1..=MAX_LEVELS`.
    #[doc(hidden)]
    pub fn insert_with_height(&self, key: K, value: V, height: usize) -> bool {
        let height = height.clamp(1, MAX_LEVELS);
        // SAFETY: protocol invariants as documented on each helper.
        unsafe {
            let mut saved: Vec<*mut SkipNode<K, V>> = Vec::new();
            let mut c0 = self.descend(&key, Some(&mut saved));
            let release_saved = |saved: &[*mut SkipNode<K, V>]| {
                for &p in saved {
                    self.arena.release(p);
                }
            };
            if self.find_from(0, &mut c0, &key) {
                self.release_cursor(c0);
                release_saved(&saved);
                valois_trace::probe!(DictInsert, 0u64, 0u64);
                return false;
            }
            // Allocate and initialize the tower cell.
            let cell = self.arena.alloc().expect("skip-list node pool exhausted");
            (*(*cell).key.get()).write(key);
            (*(*cell).value.get()).write(value);
            (*cell).level.store(height as u8, Ordering::Relaxed);
            (*cell).kind.store(KIND_CELL, Ordering::Release);
            let key = (*cell).key(); // owned by the cell now
                                     // Level 0: the membership-defining insertion (Fig. 12 loop).
            let aux0 = self.arena.alloc().expect("skip-list node pool exhausted");
            (*aux0).kind.store(KIND_AUX, Ordering::Release);
            let mut backoff = Backoff::new();
            loop {
                if self.try_insert(0, &c0, cell, aux0) {
                    // The list links count both nodes now; drop the aux
                    // allocation reference (the cell's is dropped at the
                    // end, after the upper levels are linked).
                    self.arena.release(aux0);
                    valois_trace::probe!(TowerLink, cell as usize, 0u64);
                    break;
                }
                self.retries.fetch_add(1, Ordering::Relaxed);
                backoff.spin();
                // INVARIANT: I10
                self.resume(0, &mut c0);
                if self.find_from(0, &mut c0, key) {
                    // A concurrent insert of the same key won: roll back.
                    self.release_cursor(c0);
                    release_saved(&saved);
                    self.arena.release(cell); // drains key/value + aux0 link
                    self.arena.release(aux0);
                    valois_trace::probe!(DictInsert, 0u64, 0u64);
                    return false;
                }
            }
            self.release_cursor(c0);
            // Upper levels, bottom-up ("insertions starting with the bottom
            // level and working up").
            #[allow(clippy::needless_range_loop)] // saved is indexed by level
            'levels: for lvl in 1..height {
                let entry = saved[lvl];
                let mut c = self.cursor_at(lvl, entry);
                let aux = self.arena.alloc().expect("skip-list node pool exhausted");
                (*aux).kind.store(KIND_AUX, Ordering::Release);
                let mut backoff = Backoff::new();
                loop {
                    // Don't extend a tower whose cell was already removed
                    // at level 0 by a concurrent delete.
                    if !(*cell).back_link[0].read().is_null() {
                        self.arena.release(aux);
                        self.release_cursor(c);
                        break 'levels;
                    }
                    if self.find_from(lvl, &mut c, key) {
                        if c.target == cell {
                            // Already linked here (shouldn't happen — we
                            // are the only linker — but harmless).
                            self.arena.release(aux);
                            break;
                        }
                        // A lingering deleted cell with the same key; step
                        // past it and retry.
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        if !self.next(lvl, &mut c) {
                            self.arena.release(aux);
                            break;
                        }
                        continue;
                    }
                    if self.try_insert(lvl, &c, cell, aux) {
                        self.arena.release(aux);
                        valois_trace::probe!(TowerLink, cell as usize, lvl);
                        break;
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    backoff.spin();
                    // INVARIANT: I10
                    self.resume(lvl, &mut c);
                }
                // If the cell was removed while we linked this level, undo
                // our own link (the remover may have already passed lvl).
                //
                // ORDER: SeqCst fence between the level-`lvl` link CAS
                // above and the `back_link[0]` read below — pairs with the
                // remover's fence in `sweep_orphan_tower`. In the SC total
                // order one fence precedes the other, so either the read
                // below observes the level-0 deletion (we undo our link
                // here), or the remover's sweep observes our link (it
                // unlinks `cell` at this level). Without the fences both
                // sides can miss the other's store and the level-`lvl`
                // entry is orphaned. See docs/PROTOCOL.md, "The
                // orphan-tower race".
                // INVARIANT: I9 (fence pairing) — partner is the sweep
                // fence in `sweep_orphan_tower`; preserves I8.
                fence(Ordering::SeqCst);
                if !(*cell).back_link[0].read().is_null() {
                    let mut cc = self.cursor_at(lvl, self.first);
                    loop {
                        if !self.find_from(lvl, &mut cc, key) {
                            break;
                        }
                        if cc.target != cell {
                            if !self.next(lvl, &mut cc) {
                                break;
                            }
                            continue;
                        }
                        if self.try_delete(lvl, &mut cc) {
                            valois_trace::probe!(TowerUndo, cell as usize, lvl);
                            break;
                        }
                        // INVARIANT: I10
                        self.resume(lvl, &mut cc);
                    }
                    self.release_cursor(cc);
                    self.release_cursor(c);
                    break 'levels;
                }
                self.release_cursor(c);
            }
            // Hand the allocation reference over (the level-0 list counts
            // the cell now).
            self.arena.release(cell);
            release_saved(&saved);
            valois_trace::probe!(DictInsert, cell as usize, 1u64);
            true
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        // Top-down: delete from every level where the key appears; the
        // level-0 deletion decides the return value.
        // SAFETY: protocol invariants as documented on each helper.
        unsafe {
            let mut entry = self.first;
            self.arena.incr_ref(entry);
            let mut removed = false;
            let mut backoff = Backoff::new();
            for lvl in (0..MAX_LEVELS).rev() {
                let mut c = self.cursor_at(lvl, entry);
                self.arena.release(entry);
                loop {
                    if !self.find_from(lvl, &mut c, key) {
                        break;
                    }
                    if self.try_delete(lvl, &mut c) {
                        if lvl == 0 {
                            // The membership-defining deletion won. Sweep
                            // the upper levels again: a racing bottom-up
                            // inserter may have linked (or may yet link)
                            // this cell above after our top-down pass went
                            // by. `c.target` is still counted here (the
                            // cursor releases it below).
                            removed = true;
                            self.sweep_orphan_tower(c.target);
                        }
                        break;
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    backoff.spin();
                    // INVARIANT: I10
                    self.resume(lvl, &mut c);
                }
                entry = c.pre_cell;
                self.arena.incr_ref(entry);
                self.release_cursor(c);
            }
            self.arena.release(entry);
            valois_trace::probe!(DictRemove, removed as u64);
            removed
        }
    }

    /// Post-delete sweep: after winning the level-0 (membership) deletion
    /// of `d`, unlink `d` from every upper level it may still occupy.
    ///
    /// The top-down pass already cleaned the levels where `d` was visible
    /// *before* it reached level 0 — but a concurrent bottom-up inserter
    /// can link `d` into an upper level after the pass went by (its
    /// `back_link[0]` checks raced the level-0 deletion). The inserter
    /// self-undoes when its post-link check observes the deletion; this
    /// sweep covers the complementary interleaving where that check fired
    /// first and observed nothing. The paired SeqCst fences (here and at
    /// the inserter's post-link check) guarantee at least one of the two
    /// mechanisms sees the other side's store — see docs/PROTOCOL.md,
    /// "The orphan-tower race".
    ///
    /// Matching is by pointer identity, not key: a newer tower reusing the
    /// same key must survive the sweep.
    ///
    /// # Safety
    ///
    /// The caller must hold a counted reference on `d` (so it cannot be
    /// reclaimed mid-sweep), and `d`'s level-0 deletion must have set its
    /// `back_link[0]`.
    // GUARD: d — caller holds a count on the dying tower across the sweep.
    unsafe fn sweep_orphan_tower(&self, d: *mut SkipNode<K, V>) {
        // ORDER: SeqCst fence after the level-0 `back_link[0]` write (in
        // `try_delete`) and before the upper-level reads below — the
        // remover half of the pairing described above.
        // INVARIANT: I9 (fence pairing) — partner is the inserter's
        // post-link fence in `insert`; preserves I8.
        fence(Ordering::SeqCst);
        // ORDER: Acquire is belt-and-braces — `level` is only ever
        // written before the node is published (the Release link CAS and
        // the counted reference we hold already order it); no `level`
        // store needs Release to pair with this.
        let height = (*d).level.load(Ordering::Acquire) as usize;
        if height <= 1 {
            return;
        }
        let key = (*d).key();
        for lvl in 1..height {
            let mut c = self.cursor_at(lvl, self.first);
            // WAIT-FREE: each failed `try_delete` means another actor
            // changed this level's chain around `d` (system-wide
            // progress), and at most one other actor ever targets `d`
            // here (its inserter's self-undo) — once either side's
            // unlink wins, `find_from` stops seeing `d` and the loop
            // exits, so retries are bounded, not contended.
            loop {
                if !self.find_from(lvl, &mut c, key) {
                    break;
                }
                if c.target != d {
                    // A different (newer) same-key tower; step past it.
                    if !self.next(lvl, &mut c) {
                        break;
                    }
                    continue;
                }
                if self.try_delete(lvl, &mut c) {
                    valois_trace::probe!(TowerSweep, d as usize, lvl);
                    break;
                }
                // Lost the unlink race at this level (the inserter's
                // self-undo, most likely); re-examine from a fresh view.
                self.retries.fetch_add(1, Ordering::Relaxed);
                // INVARIANT: I10
                self.resume(lvl, &mut c);
            }
            self.release_cursor(c);
        }
    }

    fn find_impl<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        // SAFETY: protocol invariants as documented on each helper.
        unsafe {
            let mut c = self.descend(key, None);
            let result = if self.find_from(0, &mut c, key) {
                Some(f((*c.target).value()))
            } else {
                None
            };
            self.release_cursor(c);
            result
        }
    }

    /// Runs `f` on the value stored under `key`, without cloning.
    pub fn with_value<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.find_impl(key, f)
    }

    /// Keys currently present (level-0 scan), in sorted order.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        self.level_keys(0)
    }

    /// Visits every entry with key in `[lo, hi)`, in key order, using the
    /// skip structure to reach `lo` in O(log n).
    pub fn for_each_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        // SAFETY: protocol invariants as documented on each helper.
        unsafe {
            let mut c = self.descend(lo, None);
            let _ = self.find_from(0, &mut c, lo);
            loop {
                if c.target == self.last {
                    break;
                }
                if (*c.target).kind() == KIND_CELL {
                    let k = (*c.target).key();
                    if k >= hi {
                        break;
                    }
                    if k >= lo {
                        f(k, (*c.target).value());
                    }
                }
                if !self.next(0, &mut c) {
                    break;
                }
            }
            self.release_cursor(c);
        }
    }

    /// Collects the `(key, value)` pairs with key in `[lo, hi)`.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.for_each_range(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Total CAS retries across operations (the §4.1 O(p log n) extra-work
    /// measure — experiment E5).
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Memory-protocol counters (§5 traffic).
    pub fn mem_stats(&self) -> MemStats {
        self.arena.stats()
    }

    /// Quiescent invariant check (testing hook): every level strictly
    /// sorted, and every upper-level key present at level 0.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String>
    where
        K: Clone,
    {
        let keys0 = self.keys();
        if keys0.windows(2).any(|w| w[0] >= w[1]) {
            return Err("level 0 keys not strictly sorted".into());
        }
        for lvl in 1..MAX_LEVELS {
            let keys = self.level_keys(lvl);
            if keys.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("level {lvl} keys not strictly sorted"));
            }
            for k in &keys {
                if keys0.binary_search(k).is_err() {
                    return Err(format!("level {lvl} contains key missing from level 0"));
                }
            }
        }
        Ok(())
    }

    fn level_keys(&self, lvl: usize) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        // SAFETY: protocol invariants as documented on each helper.
        unsafe {
            let mut c = self.cursor_at(lvl, self.first);
            loop {
                if c.target == self.last {
                    break;
                }
                if (*c.target).kind() == KIND_CELL {
                    out.push((*c.target).key().clone());
                }
                if !self.next(lvl, &mut c) {
                    break;
                }
            }
            self.release_cursor(c);
        }
        out
    }
}

impl<K, V> Default for SkipListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send + Sync, V: Send + Sync> Drop for SkipListDict<K, V> {
    fn drop(&mut self) {
        // Release the roots and cascade, then sweep whatever back-link
        // cycles kept alive — same shape as List::drop.
        // SAFETY: &mut self in drop — quiescent.
        unsafe {
            let f = self.first_root.swap(std::ptr::null_mut());
            let l = self.last_root.swap(std::ptr::null_mut());
            self.arena.release(f);
            self.arena.release(l);
            use std::collections::HashSet;
            let mut reachable: HashSet<usize> = HashSet::new();
            let mut stack = vec![self.first, self.last];
            while let Some(p) = stack.pop() {
                if p.is_null() || !reachable.insert(p as usize) {
                    continue;
                }
                for l in &(*p).next {
                    stack.push(l.read());
                }
                for l in &(*p).back_link {
                    stack.push(l.read());
                }
            }
            let mut garbage = Vec::new();
            self.arena.for_each_node(|p| {
                if (*p).kind() != KIND_FREE && !reachable.contains(&(p as usize)) {
                    garbage.push(p);
                }
            });
            let set: HashSet<usize> = garbage.iter().map(|p| *p as usize).collect();
            for &g in &garbage {
                let _ = (*g).header().set_claim();
            }
            for &g in &garbage {
                let links = (*g).drain_links();
                for t in links.iter() {
                    if set.contains(&(t as usize)) {
                        (*t).header().decr_ref();
                    } else {
                        self.arena.release(t);
                    }
                }
            }
            for &g in &garbage {
                self.arena.reclaim_detached(g);
            }
        }
    }
}

impl<K, V> Dictionary<K, V> for SkipListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.find_impl(key, V::clone)
    }

    fn contains(&self, key: &K) -> bool {
        self.find_impl(key, |_| ()).is_some()
    }

    fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: protocol invariants as documented on each helper.
        unsafe {
            let mut c = self.cursor_at(0, self.first);
            loop {
                if c.target == self.last {
                    break;
                }
                if (*c.target).kind() == KIND_CELL {
                    n += 1;
                }
                if !self.next(0, &mut c) {
                    break;
                }
            }
            self.release_cursor(c);
        }
        n
    }
}

impl<K, V> fmt::Debug for SkipListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipListDict")
            .field("len", &self.len())
            .field("retries", &self.retry_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        for k in 0..200 {
            assert!(d.insert(k, k * 3), "insert {k}");
        }
        for k in 0..200 {
            assert_eq!(d.find(&k), Some(k * 3), "find {k}");
        }
        assert_eq!(d.len(), 200);
        for k in (0..200).step_by(2) {
            assert!(d.remove(&k), "remove {k}");
        }
        assert_eq!(d.len(), 100);
        for k in 0..200 {
            assert_eq!(d.contains(&k), k % 2 == 1);
        }
    }

    #[test]
    fn duplicates_rejected() {
        let d: SkipListDict<u32, &str> = SkipListDict::new();
        assert!(d.insert(1, "a"));
        assert!(!d.insert(1, "b"));
        assert_eq!(d.find(&1), Some("a"));
    }

    #[test]
    fn random_order_stays_sorted() {
        let mut d: SkipListDict<u32, ()> = SkipListDict::new();
        let keys = [17u32, 3, 99, 42, 8, 64, 1, 55, 23, 77];
        for &k in &keys {
            d.insert(k, ());
        }
        let mut expected: Vec<u32> = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(d.keys(), expected);
        d.check_invariants().unwrap();
    }

    #[test]
    fn remove_absent_returns_false() {
        let d: SkipListDict<u32, u32> = SkipListDict::new();
        d.insert(5, 5);
        assert!(!d.remove(&4));
        assert!(d.remove(&5));
        assert!(!d.remove(&5));
    }

    #[test]
    fn reinsert_after_remove() {
        let mut d: SkipListDict<u32, u32> = SkipListDict::new();
        for round in 0..20 {
            assert!(d.insert(7, round), "round {round}");
            assert_eq!(d.find(&7), Some(round));
            assert!(d.remove(&7), "round {round}");
            assert_eq!(d.find(&7), None);
        }
        d.check_invariants().unwrap();
    }

    #[test]
    fn level_distribution_is_geometric() {
        let d: SkipListDict<u32, ()> = SkipListDict::new();
        let mut heights = [0usize; MAX_LEVELS + 1];
        for _ in 0..10_000 {
            heights[d.random_level()] += 1;
        }
        assert!(
            heights[1] > 4_000 && heights[1] < 6_000,
            "h=1: {}",
            heights[1]
        );
        assert!(
            heights[2] > 1_900 && heights[2] < 3_100,
            "h=2: {}",
            heights[2]
        );
        assert_eq!(heights[0], 0);
    }

    #[test]
    fn large_volume_roundtrip() {
        let mut d: SkipListDict<u32, u32> = SkipListDict::new();
        let n = 3_000u32;
        // Insert in an order that exercises all positions.
        for k in (0..n).map(|i| (i * 7919) % n) {
            d.insert(k, k);
        }
        assert_eq!(d.len() as u32, n, "modular stride visits every residue");
        for k in 0..n {
            assert_eq!(d.find(&k), Some(k));
        }
        d.check_invariants().unwrap();
    }

    #[test]
    fn range_uses_skip_descent() {
        let d: SkipListDict<u32, u32> = SkipListDict::new();
        for k in 0..500 {
            d.insert(k * 2, k);
        }
        let r = d.range(&100, &120);
        assert_eq!(
            r,
            vec![
                (100, 50),
                (102, 51),
                (104, 52),
                (106, 53),
                (108, 54),
                (110, 55),
                (112, 56),
                (114, 57),
                (116, 58),
                (118, 59)
            ]
        );
        assert!(d.range(&1001, &1001).is_empty());
        assert!(d.range(&2000, &1000).is_empty(), "inverted range empty");
    }

    #[test]
    fn memory_returns_to_empty_skeleton() {
        // After arbitrary churn and a full drain, the only live nodes are
        // the two dummies and one aux per level: every tower cell and
        // per-level aux was reclaimed through the free list.
        let mut d: SkipListDict<u32, u32> = SkipListDict::new();
        let mut x = 0xBADC0FFEu64;
        for _ in 0..3_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 64) as u32;
            if x & 2 == 0 {
                d.insert(k, k);
            } else {
                d.remove(&k);
            }
        }
        for k in 0..64 {
            d.remove(&k);
        }
        assert_eq!(d.len(), 0);
        assert_eq!(
            d.mem_stats().live_nodes(),
            2 + MAX_LEVELS as u64,
            "empty skeleton only: 2 dummies + one aux per level"
        );
        d.check_invariants().unwrap();
    }

    #[test]
    fn max_tower_drain_fits_reclaimed_links_cap() {
        // A full-height tower is the worst case for `Release`'s link drain:
        // 2 * MAX_LEVELS counted links from one node. `ReclaimedLinks`
        // panics past `valois_mem::MAX_LINKS`, so this must fit with room
        // to spare — silently relying on towers never reaching max height
        // would turn a rare geometric draw into a production abort.
        let node: SkipNode<u32, u32> = SkipNode::default();
        let sink: SkipNode<u32, u32> = SkipNode::default();
        let target = &sink as *const _ as *mut SkipNode<u32, u32>;
        node.level.store(MAX_LEVELS as u8, Ordering::Relaxed);
        for lvl in 0..MAX_LEVELS {
            node.next[lvl].write(target);
            node.back_link[lvl].write(target);
        }
        let links = node.drain_links();
        assert_eq!(links.len(), 2 * MAX_LEVELS);
        assert!(links.len() <= valois_mem::MAX_LINKS);
        assert!(links.iter().all(|p| p == target));
    }

    #[test]
    fn drop_releases_all_values() {
        use valois_sync::shim::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let d: SkipListDict<u32, Probe> = SkipListDict::new();
            for k in 0..50 {
                d.insert(k, Probe);
            }
            for k in 0..10 {
                d.remove(&k);
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 50);
    }
}
