//! The sorted-list dictionary (paper §4.1, Figs. 11–13).
//!
//! Items are kept sorted by key in a single Valois list, which makes key
//! uniqueness checkable during the positioning scan: `FindFrom` (Fig. 11)
//! stops at the first cell with key ≥ k, leaving the cursor exactly where a
//! new cell must be inserted. The §4.1 amortized analysis (each completed
//! operation forces at most p−1 retries on others; total work O(n²) for n
//! operations by p processes) is measurable through
//! [`SortedListDict::list_stats`] — experiment E3.

use std::fmt;

use valois_core::{ArenaConfig, Cursor, List, ListStats, MemStats};

use crate::traits::Dictionary;

/// A key–value item stored in a list cell.
///
/// The paper's cells carry a `key` field plus application data (§2.1,
/// §4.1); `Entry` is exactly that pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<K, V> {
    /// The unique key.
    pub key: K,
    /// The associated value.
    pub value: V,
}

/// `FindFrom` (Fig. 11): advances `cursor` until it visits a cell with key
/// ≥ `key` (or the end position). Returns `true` iff the visited cell's key
/// equals `key`.
///
/// On a `false` return the cursor is positioned so that inserting before it
/// keeps the list sorted — the positioning contract Fig. 12 relies on.
pub(crate) fn find_from<K, V, Q>(cursor: &mut Cursor<'_, Entry<K, V>>, key: &Q) -> bool
where
    K: Ord + std::borrow::Borrow<Q> + Send + Sync,
    Q: Ord + ?Sized,
    V: Send + Sync,
{
    // Fig. 11 lines 1-8.
    while !cursor.is_at_end() {
        match cursor.get() {
            Some(entry) => {
                let k = entry.key.borrow();
                if k == key {
                    return true;
                }
                if k > key {
                    return false;
                }
                if !cursor.next() {
                    return false;
                }
            }
            // The visited node is a dummy (transient mid-reposition state);
            // step forward.
            None => {
                if !cursor.next() {
                    return false;
                }
            }
        }
    }
    false
}

/// A non-blocking dictionary as a single sorted lock-free list
/// (paper §4.1).
///
/// # Example
///
/// ```
/// use valois_dict::{Dictionary, SortedListDict};
///
/// let d: SortedListDict<u64, u64> = SortedListDict::new();
/// for k in [5, 1, 3] {
///     d.insert(k, k * 10);
/// }
/// assert_eq!(d.keys(), vec![1, 3, 5], "kept sorted");
/// ```
pub struct SortedListDict<K: Send + Sync, V: Send + Sync> {
    list: List<Entry<K, V>>,
}

impl<K, V> SortedListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    /// Creates an empty dictionary with the default arena configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Creates an empty dictionary with a specific arena configuration
    /// (e.g. the paper's fixed-pool model via
    /// [`ArenaConfig::max_nodes`]).
    pub fn with_config(config: ArenaConfig) -> Self {
        Self {
            list: List::with_config(config),
        }
    }

    /// The paper's `Insert` (Fig. 12).
    fn insert_impl(&self, key: K, value: V) -> bool {
        let mut cursor = self.list.cursor(); // Fig. 12 line 1
                                             // First positioning scan before paying for allocation.
        if find_from(&mut cursor, &key) {
            return false; // Fig. 12 lines 6-7
        }
        // Fig. 12 lines 2-4: allocate and initialize the new cell + aux.
        let mut prepared = self
            .list
            .prepare_insert(Entry { key, value })
            .expect("node pool exhausted");
        loop {
            // Fig. 12 lines 8-10.
            match cursor.try_insert(prepared) {
                Ok(()) => return true,
                Err(back) => prepared = back,
            }
            // Fig. 12 lines 11-12: revalidate, re-check uniqueness, retry.
            cursor.update();
            if find_from(&mut cursor, &prepared.value().key) {
                return false; // concurrent insert won with the same key
            }
        }
    }

    /// The paper's `Delete` (Fig. 13).
    fn remove_impl(&self, key: &K) -> bool {
        let mut cursor = self.list.cursor(); // Fig. 13 line 1
        loop {
            // Fig. 13 lines 2-4.
            if !find_from(&mut cursor, key) {
                return false;
            }
            // Fig. 13 lines 5-7.
            if cursor.try_delete() {
                return true;
            }
            // Fig. 13 lines 8-9.
            cursor.update();
        }
    }

    /// Runs `f` on the value stored under `key`, without cloning.
    pub fn with_value<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let mut cursor = self.list.cursor();
        if find_from(&mut cursor, key) {
            cursor.get().map(|e| f(&e.value))
        } else {
            None
        }
    }

    /// The keys currently present, in sorted order.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        self.list.for_each(|e| out.push(e.key.clone()));
        out
    }

    /// Visits every entry with key in `[lo, hi)`, in key order — the range
    /// query sorted structures exist for. A linearizable traversal in the
    /// list's sense: each step is atomic, the sequence reflects the list
    /// as it evolves.
    pub fn for_each_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        let mut cursor = self.list.cursor();
        // Position at the first key >= lo (FindFrom's stop condition).
        let _ = find_from(&mut cursor, lo);
        loop {
            match cursor.get() {
                Some(entry) if entry.key < *hi => {
                    if entry.key >= *lo {
                        f(&entry.key, &entry.value);
                    }
                    if !cursor.next() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    /// Collects the `(key, value)` pairs with key in `[lo, hi)`.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.for_each_range(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Operation counters of the underlying list (§4.1 "extra work").
    pub fn list_stats(&self) -> ListStats {
        self.list.stats()
    }

    /// Memory-protocol counters of the underlying arena (§5 traffic).
    pub fn mem_stats(&self) -> MemStats {
        self.list.mem_stats()
    }

    /// Structural invariant check at quiescence (testing hook): list
    /// well-formed *and* keys strictly sorted.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String>
    where
        K: Clone,
    {
        self.list.check_structure()?;
        let keys = self.keys();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly sorted".into());
        }
        Ok(())
    }

    /// Direct read-only access to the underlying list (for experiments
    /// that inspect auxiliary-node structure, e.g. E7).
    pub fn as_list(&self) -> &List<Entry<K, V>> {
        &self.list
    }
}

impl<K, V> Default for SortedListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Dictionary<K, V> for SortedListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.with_value(key, V::clone)
    }

    fn contains(&self, key: &K) -> bool {
        let mut cursor = self.list.cursor();
        find_from(&mut cursor, key)
    }

    fn len(&self) -> usize {
        self.list.len()
    }
}

impl<K, V> fmt::Debug for SortedListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SortedListDict")
            .field("len", &self.len())
            .finish()
    }
}

impl<K, V> FromIterator<(K, V)> for SortedListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let dict = Self::new();
        for (k, v) in iter {
            dict.insert(k, v);
        }
        dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_remove_roundtrip() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        assert!(d.insert(1, 10));
        assert!(d.insert(2, 20));
        assert_eq!(d.find(&1), Some(10));
        assert_eq!(d.find(&2), Some(20));
        assert_eq!(d.find(&3), None);
        assert!(d.remove(&1));
        assert!(!d.remove(&1));
        assert_eq!(d.find(&1), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let d: SortedListDict<u32, &str> = SortedListDict::new();
        assert!(d.insert(7, "first"));
        assert!(!d.insert(7, "second"));
        assert_eq!(d.find(&7), Some("first"));
    }

    #[test]
    fn keys_stay_sorted_regardless_of_insert_order() {
        let mut d: SortedListDict<i64, ()> = SortedListDict::new();
        for k in [5, -3, 9, 0, 2, -7, 1] {
            d.insert(k, ());
        }
        assert_eq!(d.keys(), vec![-7, -3, 0, 1, 2, 5, 9]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn with_value_avoids_clone() {
        let d: SortedListDict<u32, Vec<u8>> = SortedListDict::new();
        d.insert(1, vec![1, 2, 3]);
        assert_eq!(d.with_value(&1, |v| v.len()), Some(3));
        assert_eq!(d.with_value(&9, |v| v.len()), None);
    }

    #[test]
    fn contains_matches_find() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        d.insert(4, 44);
        assert!(d.contains(&4));
        assert!(!d.contains(&5));
    }

    #[test]
    fn from_iterator_dedupes() {
        let d: SortedListDict<u32, u32> = [(1, 1), (2, 2), (1, 99)].into_iter().collect();
        assert_eq!(d.len(), 2);
        assert_eq!(d.find(&1), Some(1), "first insert wins");
    }

    #[test]
    fn range_queries_respect_bounds() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        for k in (0..50).step_by(5) {
            d.insert(k, k * 10);
        }
        assert_eq!(
            d.range(&10, &30),
            vec![(10, 100), (15, 150), (20, 200), (25, 250)]
        );
        assert_eq!(d.range(&0, &1), vec![(0, 0)]);
        assert_eq!(d.range(&46, &100), Vec::<(u32, u32)>::new());
        assert_eq!(d.range(&7, &8), Vec::<(u32, u32)>::new(), "gap range");
        // Degenerate and inverted ranges are empty.
        assert_eq!(d.range(&10, &10), Vec::<(u32, u32)>::new());
        assert_eq!(d.range(&30, &10), Vec::<(u32, u32)>::new());
    }

    #[test]
    fn range_during_concurrent_churn_is_safe() {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        for k in 0..128 {
            d.insert(k * 2, k);
        }
        std::thread::scope(|s| {
            let d = &d;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (i * 7) % 256;
                    if i % 2 == 0 {
                        d.insert(k, i);
                    } else {
                        d.remove(&k);
                    }
                }
            });
            s.spawn(move || {
                for _ in 0..200 {
                    let mut last = None;
                    d.for_each_range(&32, &96, |k, _| {
                        // Keys must appear in order and inside bounds.
                        assert!((32..96).contains(k));
                        if let Some(prev) = last {
                            assert!(*k > prev, "out-of-order range visit");
                        }
                        last = Some(*k);
                    });
                }
            });
        });
    }

    #[test]
    fn empty_dict_behaviour() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(!d.remove(&1));
        assert_eq!(d.find(&1), None);
    }
}
