//! The sorted-list dictionary (paper §4.1, Figs. 11–13).
//!
//! Items are kept sorted by key in a single Valois list, which makes key
//! uniqueness checkable during the positioning scan: `FindFrom` (Fig. 11)
//! stops at the first cell with key ≥ k, leaving the cursor exactly where a
//! new cell must be inserted. The §4.1 amortized analysis (each completed
//! operation forces at most p−1 retries on others; total work O(n²) for n
//! operations by p processes) is measurable through
//! [`SortedListDict::list_stats`] — experiment E3.

use std::fmt;

use valois_core::{ArenaConfig, Cursor, List, ListStats, MemStats, Reclaimer, RefCount};

use crate::cursor_cache::CursorCache;
use crate::traits::Dictionary;

/// A key–value item stored in a list cell.
///
/// The paper's cells carry a `key` field plus application data (§2.1,
/// §4.1); `Entry` is exactly that pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<K, V> {
    /// The unique key.
    pub key: K,
    /// The associated value.
    pub value: V,
}

/// `FindFrom` (Fig. 11): advances `cursor` until it visits a cell with key
/// ≥ `key` (or the end position). Returns `true` iff the visited cell's key
/// equals `key`.
///
/// On a `false` return the cursor is positioned so that inserting before it
/// keeps the list sorted — the positioning contract Fig. 12 relies on.
pub(crate) fn find_from<K, V, Q, R>(cursor: &mut Cursor<'_, Entry<K, V>, R>, key: &Q) -> bool
where
    K: Ord + std::borrow::Borrow<Q> + Send + Sync,
    Q: Ord + ?Sized,
    V: Send + Sync,
    R: Reclaimer,
{
    // Fig. 11 lines 1-8.
    while !cursor.is_at_end() {
        match cursor.get() {
            Some(entry) => {
                let k = entry.key.borrow();
                if k == key {
                    return true;
                }
                if k > key {
                    return false;
                }
                if !cursor.next() {
                    return false;
                }
            }
            // The visited node is a dummy (transient mid-reposition state);
            // step forward.
            None => {
                if !cursor.next() {
                    return false;
                }
            }
        }
    }
    false
}

/// A non-blocking dictionary as a single sorted lock-free list
/// (paper §4.1).
///
/// The last type parameter selects the arena's reclamation backend
/// (see [`List`]'s "Reclamation backends" section): the paper's
/// counted protocol by default, or `valois_core::Epoch` for uncounted
/// traversal under epoch protection:
///
/// ```
/// use valois_dict::{Dictionary, SortedListDict};
/// use valois_core::Epoch;
///
/// let d: SortedListDict<u64, u64, Epoch> = SortedListDict::new();
/// d.insert(1, 10);
/// assert_eq!(d.find(&1), Some(10));
/// ```
///
/// # Example
///
/// ```
/// use valois_dict::{Dictionary, SortedListDict};
///
/// let d: SortedListDict<u64, u64> = SortedListDict::new();
/// for k in [5, 1, 3] {
///     d.insert(k, k * 10);
/// }
/// assert_eq!(d.keys(), vec![1, 3, 5], "kept sorted");
/// ```
pub struct SortedListDict<K: Send + Sync, V: Send + Sync, R: Reclaimer = RefCount> {
    list: List<Entry<K, V>, R>,
    cache: CursorCache<Entry<K, V>>,
    cached: bool,
}

impl<K, V, R> SortedListDict<K, V, R>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    /// Creates an empty dictionary with the default arena configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Creates an empty dictionary with a specific arena configuration
    /// (e.g. the paper's fixed-pool model via
    /// [`ArenaConfig::max_nodes`]).
    pub fn with_config(config: ArenaConfig) -> Self {
        Self::with_config_cached(config, true)
    }

    /// [`SortedListDict::with_config`] with per-thread cursor caching
    /// switched off — every operation then positions from the list head,
    /// the paper's literal Figs. 12–13 (and the restart-from-head
    /// baseline of `BENCH_retry.json`).
    pub fn with_config_cached(config: ArenaConfig, cached: bool) -> Self {
        Self {
            list: List::with_config(config),
            cache: CursorCache::new(),
            cached,
        }
    }

    /// A cursor positioned to search for `key`: this thread's cached
    /// position when it is usable (anchor key strictly below `key` —
    /// an equal-key anchor could sit *at* the sought cell and make the
    /// forward scan skip it), the list head otherwise.
    fn cursor_for<Q>(&self, key: &Q) -> Cursor<'_, Entry<K, V>, R>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if self.cached {
            if let Some(cursor) = self.cache.open(&self.list, |e| e.key.borrow() < key) {
                return cursor;
            }
        }
        self.list.cursor()
    }

    /// Remembers `cursor`'s neighbourhood for this thread's next
    /// operation.
    fn save_position(&self, cursor: &Cursor<'_, Entry<K, V>, R>) {
        if self.cached {
            self.cache.save(&self.list, cursor);
        }
    }

    /// The paper's `Insert` (Fig. 12), with two departures: positioning
    /// starts from the thread's cached cursor instead of the head, and
    /// a failed CAS retries via [`Cursor::resume`] (back_link-guided,
    /// O(distance-to-conflict)) instead of `Update` alone.
    fn insert_impl(&self, key: K, value: V) -> bool {
        let mut cursor = self.cursor_for(&key); // Fig. 12 line 1
                                                // First positioning scan before paying for allocation.
        if find_from(&mut cursor, &key) {
            self.save_position(&cursor);
            return false; // Fig. 12 lines 6-7
        }
        // Fig. 12 lines 2-4: allocate and initialize the new cell + aux.
        let mut prepared = match self.list.try_prepare_insert(Entry { key, value }) {
            Ok(prepared) => prepared,
            Err((entry, _)) => {
                // Capped arena ran dry. Cached anchors pin cells (and
                // their back_link chains); shed them, drop this cursor's
                // own holds, and retry once before declaring exhaustion.
                drop(cursor);
                self.cache.retire_all(&self.list);
                cursor = self.list.cursor();
                if find_from(&mut cursor, &entry.key) {
                    return false;
                }
                self.list
                    .prepare_insert(entry)
                    .expect("node pool exhausted")
            }
        };
        loop {
            // Fig. 12 lines 8-10.
            match cursor.try_insert(prepared) {
                Ok(()) => {
                    self.save_position(&cursor);
                    return true;
                }
                Err(back) => prepared = back,
            }
            // Fig. 12 lines 11-12: revalidate (resuming from the nearest
            // undeleted predecessor), re-check uniqueness, retry.
            // INVARIANT: I10
            cursor.resume();
            if find_from(&mut cursor, &prepared.value().key) {
                self.save_position(&cursor);
                return false; // concurrent insert won with the same key
            }
        }
    }

    /// The paper's `Delete` (Fig. 13), retrying via [`Cursor::resume`]
    /// (see [`SortedListDict::insert_impl`]).
    fn remove_impl(&self, key: &K) -> bool {
        let mut cursor = self.cursor_for(key); // Fig. 13 line 1
        loop {
            // Fig. 13 lines 2-4.
            if !find_from(&mut cursor, key) {
                self.save_position(&cursor);
                return false;
            }
            // Fig. 13 lines 5-7.
            if cursor.try_delete() {
                self.save_position(&cursor);
                return true;
            }
            // Fig. 13 lines 8-9, resuming instead of restarting.
            // INVARIANT: I10
            cursor.resume();
        }
    }

    /// Runs `f` on the value stored under `key`, without cloning.
    pub fn with_value<O>(&self, key: &K, f: impl FnOnce(&V) -> O) -> Option<O> {
        let mut cursor = self.cursor_for(key);
        let out = if find_from(&mut cursor, key) {
            cursor.get().map(|e| f(&e.value))
        } else {
            None
        };
        self.save_position(&cursor);
        out
    }

    /// The keys currently present, in sorted order.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        self.list.for_each(|e| out.push(e.key.clone()));
        out
    }

    /// Visits every entry with key in `[lo, hi)`, in key order — the range
    /// query sorted structures exist for. A linearizable traversal in the
    /// list's sense: each step is atomic, the sequence reflects the list
    /// as it evolves.
    pub fn for_each_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        let mut cursor = self.cursor_for(lo);
        // Position at the first key >= lo (FindFrom's stop condition).
        let _ = find_from(&mut cursor, lo);
        loop {
            match cursor.get() {
                Some(entry) if entry.key < *hi => {
                    if entry.key >= *lo {
                        f(&entry.key, &entry.value);
                    }
                    if !cursor.next() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    /// Collects the `(key, value)` pairs with key in `[lo, hi)`.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.for_each_range(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Operation counters of the underlying list (§4.1 "extra work").
    pub fn list_stats(&self) -> ListStats {
        self.list.stats()
    }

    /// Memory-protocol counters of the underlying arena (§5 traffic).
    pub fn mem_stats(&self) -> MemStats {
        self.list.mem_stats()
    }

    /// Structural invariant check at quiescence (testing hook): list
    /// well-formed *and* keys strictly sorted.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String>
    where
        K: Clone,
    {
        self.list.check_structure()?;
        let keys = self.keys();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly sorted".into());
        }
        Ok(())
    }

    /// Exact reference-count audit at quiescence (testing hook): every
    /// cached-cursor slot legitimately holds one count on its anchor, so
    /// the slots are declared to the sweep (see
    /// [`List::audit_refcounts_with_entries`]).
    ///
    /// # Errors
    ///
    /// Describes the first mismatching node.
    pub fn audit_refcounts(&mut self) -> Result<(), String> {
        let Self { list, cache, .. } = self;
        list.audit_refcounts_with_entries(cache.roots())
    }

    /// Direct read-only access to the underlying list (for experiments
    /// that inspect auxiliary-node structure, e.g. E7).
    pub fn as_list(&self) -> &List<Entry<K, V>, R> {
        &self.list
    }
}

impl<K, V, R> Default for SortedListDict<K, V, R>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send + Sync, V: Send + Sync, R: Reclaimer> Drop for SortedListDict<K, V, R> {
    fn drop(&mut self) {
        // Return the cached-cursor counts before the list's own teardown
        // cascade (an unretired slot would leak its anchor's count — see
        // the EntryRoot contract).
        self.cache.retire_all(&self.list);
    }
}

impl<K, V, R> Dictionary<K, V> for SortedListDict<K, V, R>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.with_value(key, V::clone)
    }

    fn contains(&self, key: &K) -> bool {
        let mut cursor = self.cursor_for(key);
        let hit = find_from(&mut cursor, key);
        self.save_position(&cursor);
        hit
    }

    fn len(&self) -> usize {
        self.list.len()
    }
}

impl<K, V, R> fmt::Debug for SortedListDict<K, V, R>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SortedListDict")
            .field("len", &self.len())
            .finish()
    }
}

impl<K, V, R> FromIterator<(K, V)> for SortedListDict<K, V, R>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let dict = Self::new();
        for (k, v) in iter {
            dict.insert(k, v);
        }
        dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_remove_roundtrip() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        assert!(d.insert(1, 10));
        assert!(d.insert(2, 20));
        assert_eq!(d.find(&1), Some(10));
        assert_eq!(d.find(&2), Some(20));
        assert_eq!(d.find(&3), None);
        assert!(d.remove(&1));
        assert!(!d.remove(&1));
        assert_eq!(d.find(&1), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let d: SortedListDict<u32, &str> = SortedListDict::new();
        assert!(d.insert(7, "first"));
        assert!(!d.insert(7, "second"));
        assert_eq!(d.find(&7), Some("first"));
    }

    #[test]
    fn keys_stay_sorted_regardless_of_insert_order() {
        let mut d: SortedListDict<i64, ()> = SortedListDict::new();
        for k in [5, -3, 9, 0, 2, -7, 1] {
            d.insert(k, ());
        }
        assert_eq!(d.keys(), vec![-7, -3, 0, 1, 2, 5, 9]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn with_value_avoids_clone() {
        let d: SortedListDict<u32, Vec<u8>> = SortedListDict::new();
        d.insert(1, vec![1, 2, 3]);
        assert_eq!(d.with_value(&1, |v| v.len()), Some(3));
        assert_eq!(d.with_value(&9, |v| v.len()), None);
    }

    #[test]
    fn contains_matches_find() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        d.insert(4, 44);
        assert!(d.contains(&4));
        assert!(!d.contains(&5));
    }

    #[test]
    fn from_iterator_dedupes() {
        let d: SortedListDict<u32, u32> = [(1, 1), (2, 2), (1, 99)].into_iter().collect();
        assert_eq!(d.len(), 2);
        assert_eq!(d.find(&1), Some(1), "first insert wins");
    }

    #[test]
    fn range_queries_respect_bounds() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        for k in (0..50).step_by(5) {
            d.insert(k, k * 10);
        }
        assert_eq!(
            d.range(&10, &30),
            vec![(10, 100), (15, 150), (20, 200), (25, 250)]
        );
        assert_eq!(d.range(&0, &1), vec![(0, 0)]);
        assert_eq!(d.range(&46, &100), Vec::<(u32, u32)>::new());
        assert_eq!(d.range(&7, &8), Vec::<(u32, u32)>::new(), "gap range");
        // Degenerate and inverted ranges are empty.
        assert_eq!(d.range(&10, &10), Vec::<(u32, u32)>::new());
        assert_eq!(d.range(&30, &10), Vec::<(u32, u32)>::new());
    }

    #[test]
    fn range_during_concurrent_churn_is_safe() {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        for k in 0..128 {
            d.insert(k * 2, k);
        }
        std::thread::scope(|s| {
            let d = &d;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (i * 7) % 256;
                    if i % 2 == 0 {
                        d.insert(k, i);
                    } else {
                        d.remove(&k);
                    }
                }
            });
            s.spawn(move || {
                for _ in 0..200 {
                    let mut last = None;
                    d.for_each_range(&32, &96, |k, _| {
                        // Keys must appear in order and inside bounds.
                        assert!((32..96).contains(k));
                        if let Some(prev) = last {
                            assert!(*k > prev, "out-of-order range visit");
                        }
                        last = Some(*k);
                    });
                }
            });
        });
    }

    #[test]
    fn cached_cursors_cut_positioning_hops() {
        // Hot tail of a long list: every op lands past a 512-cell prefix.
        // Restart-from-head pays ~n next-steps per op; the cached cursor
        // reopens next to the previous op and pays O(1).
        let run = |cached: bool| -> u64 {
            let d: SortedListDict<u64, u64> =
                SortedListDict::with_config_cached(ArenaConfig::default(), cached);
            for k in 0..512 {
                d.insert(k, k);
            }
            let before = d.list_stats();
            let ops = 64;
            for _ in 0..ops {
                d.insert(1_000, 0);
                d.remove(&1_000);
            }
            let delta = d.list_stats().since(&before);
            delta.next_steps / (2 * ops)
        };
        let (head_hops, cached_hops) = (run(false), run(true));
        assert!(
            head_hops >= 512,
            "restart-from-head must pay the full prefix, got {head_hops} hops/op"
        );
        assert!(
            cached_hops * 10 < head_hops,
            "cached cursors must cut hops-per-op by >10x: {cached_hops} vs {head_hops}"
        );
    }

    #[test]
    fn cached_dict_audits_clean() {
        // The cache slots' counts are declared to the audit; anchors may
        // be deleted cells (pinned by the slot) and still balance.
        let mut d: SortedListDict<u64, u64> = SortedListDict::new();
        for k in 0..64 {
            d.insert(k, k);
        }
        for k in (0..64).step_by(2) {
            // Leaves the thread's cached anchor pointing at a deleted
            // cell's neighbourhood half the time.
            d.remove(&k);
        }
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }

    #[test]
    fn empty_dict_behaviour() {
        let d: SortedListDict<u32, u32> = SortedListDict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(!d.remove(&1));
        assert_eq!(d.find(&1), None);
    }
}
