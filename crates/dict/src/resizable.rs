//! A dynamically resizable lock-free hash table: split-ordered buckets
//! over a single §3 Valois list.
//!
//! The §4.2 [`HashDict`](crate::HashDict) fixes its bucket count at
//! construction; outgrow it and every bucket degenerates to an O(n)
//! scan. `ResizableHashDict` removes the cap with the *split-ordered
//! list* construction (Shalev & Shavit): **all** items live in one
//! Valois list, sorted by the bit-reversal of their hash, and buckets
//! are merely shortcut entry points ([`EntryRoot`]s) into that list.
//!
//! Bit-reversing the hash is what makes growth free. With `2s` buckets,
//! bucket `b` and bucket `b + s` partition the keys that bucket `b`
//! held with `s` buckets — and in bit-reversed order the items of
//! `b + s` already form a contiguous run *inside* `b`'s run. Doubling
//! the bucket count therefore never moves an item: it only introduces a
//! finer sentinel (a shortcut cell) at a split point that already
//! exists in the list order. Find/Insert/Delete remain plain §4.1
//! sorted-list operations that start from an interior cell instead of
//! `First`, so they stay lock-free through a resize.
//!
//! * Order keys: a bucket sentinel for `b` orders at `reverse(b)` with
//!   bit 0 clear; an item with hash `h` orders at `reverse(h) | 1` —
//!   after reversal the low bit distinguishes sentinels (0) from items
//!   (1), so a bucket's sentinel sorts strictly before the bucket's
//!   items and strictly after every item of the preceding bucket.
//! * Bucket directory: an append-only two-level
//!   [`SegmentTable`] (the §5 type-stable premise — segments are added,
//!   never unmapped), so a published `&EntryRoot` never moves while the
//!   table doubles around it.
//! * Lazy initialization: bucket `b`'s sentinel is inserted on first
//!   touch by searching from the sentinel of `b`'s *parent* bucket
//!   (`b` with its highest set bit cleared — always already coarser),
//!   then published into the directory with a counted CAS
//!   ([`List::publish_entry`]); racing initializers insert at the same
//!   list position (so at most one sentinel lands — the §4.1
//!   uniqueness argument) and at most one publication wins, the
//!   loser's count released by the failed swing.
//! * Size: the item count is `Fetch&Add`-published (§2.1 footnote 1);
//!   when it crosses `LOAD_FACTOR ×` the bucket count, one CAS doubles
//!   the bucket count. A thread still hashing with the old size is
//!   harmless: a coarser bucket's sentinel always precedes its finer
//!   split in list order, so the traversal just starts a little
//!   earlier.
//!
//! Sentinels are never deleted, which is precisely the guarantee
//! [`EntryRoot`] asks of its owner.

use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};

use valois_core::{
    AllocError, ArenaConfig, Cursor, EntryRoot, List, ListStats, MemStats, Reclaimer, RefCount,
};
use valois_mem::SegmentTable;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

use crate::traits::Dictionary;

/// Items per bucket (on average) beyond which the bucket count doubles.
const LOAD_FACTOR: u64 = 3;

/// Hard ceiling on the bucket count (the directory's capacity).
const MAX_BUCKETS: u64 = 1 << 20;

/// One cell of the split-ordered list: a bucket sentinel (`key: None`)
/// or a data item (`key: Some`). Sorted by `(so, sentinel-before-item,
/// key)` — see `cmp_item`. Public only as the item type of
/// [`ResizableHashDict::as_list`]; its fields are an implementation
/// detail.
#[derive(Debug)]
pub struct SplitItem<K, V> {
    /// The split-order key: `reverse(bucket)` for sentinels,
    /// `reverse(hash) | 1` for items.
    so: u64,
    /// `None` marks a bucket sentinel.
    key: Option<K>,
    /// `None` for sentinels; `Some` for items.
    value: Option<V>,
}

/// Split-order key of bucket `b`'s sentinel.
fn sentinel_order(bucket: u64) -> u64 {
    bucket.reverse_bits()
}

/// Split-order key of an item with hash `h`.
fn data_order(hash: u64) -> u64 {
    hash.reverse_bits() | 1
}

/// Parent bucket in the recursive-split order: `b` with its highest set
/// bit cleared. Its sentinel always precedes `b`'s in the list (clearing
/// the bit can only lower the bit-reversed value).
fn parent_bucket(bucket: u64) -> u64 {
    debug_assert!(bucket > 0);
    bucket & !(1u64 << (63 - bucket.leading_zeros()))
}

/// Total order over list positions: split-order key first, then
/// sentinel-before-item, then the logical key (two distinct keys may
/// share a hash and thus a split-order key).
fn cmp_item<K: Ord>(item_so: u64, item_key: Option<&K>, so: u64, key: Option<&K>) -> CmpOrdering {
    item_so.cmp(&so).then_with(|| match (item_key, key) {
        (None, None) => CmpOrdering::Equal,
        (None, Some(_)) => CmpOrdering::Less,
        (Some(_), None) => CmpOrdering::Greater,
        (Some(a), Some(b)) => a.cmp(b),
    })
}

/// `FindFrom` (Fig. 11) over split order: advances `cursor` to the first
/// position ≥ `(so, key)`; `true` iff that position holds exactly
/// `(so, key)`. On `false` the cursor is positioned so that inserting
/// before it keeps the list split-ordered.
fn find_so<K, V, R>(cursor: &mut Cursor<'_, SplitItem<K, V>, R>, so: u64, key: Option<&K>) -> bool
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    while !cursor.is_at_end() {
        match cursor.get() {
            Some(item) => match cmp_item(item.so, item.key.as_ref(), so, key) {
                CmpOrdering::Equal => return true,
                CmpOrdering::Greater => return false,
                CmpOrdering::Less => {
                    if !cursor.next() {
                        return false;
                    }
                }
            },
            // Dummy under the cursor (transient mid-reposition state).
            None => {
                if !cursor.next() {
                    return false;
                }
            }
        }
    }
    false
}

/// A lock-free hash table that grows by splitting buckets, never by
/// moving items (split-ordered list over the §3 Valois list).
///
/// # Example
///
/// ```
/// use valois_dict::{Dictionary, ResizableHashDict};
///
/// let d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
/// for k in 0..100 {
///     d.insert(k, k * 10);
/// }
/// assert!(d.bucket_count() > 2, "grew under load");
/// assert_eq!(d.find(&42), Some(420));
/// ```
pub struct ResizableHashDict<
    K: Send + Sync,
    V: Send + Sync,
    S: BuildHasher = RandomState,
    R: Reclaimer = RefCount,
> {
    list: List<SplitItem<K, V>, R>,
    /// Bucket directory: slot `b` is bucket `b`'s shortcut root.
    buckets: SegmentTable<EntryRoot<SplitItem<K, V>>>,
    /// Current bucket count (a power of two; grows by CAS doubling).
    size: AtomicU64,
    /// Item count, `Fetch&Add`-published (§2.1 footnote 1).
    count: AtomicU64,
    /// Completed doublings (statistics).
    splits: AtomicU64,
    /// Sentinel publications performed by this table (statistics).
    bucket_inits: AtomicU64,
    hasher: S,
}

impl<K, V, R> ResizableHashDict<K, V, RandomState, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    /// An empty table with the default initial bucket count.
    pub fn new() -> Self {
        Self::with_initial_buckets(8)
    }

    /// An empty table starting at `initial_buckets` (rounded up to a
    /// power of two; the proptest suite starts at 2 to force doublings).
    pub fn with_initial_buckets(initial_buckets: u64) -> Self {
        Self::with_settings(initial_buckets, RandomState::new(), ArenaConfig::default())
    }
}

impl<K, V, S, R> ResizableHashDict<K, V, S, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    /// An empty table with an explicit hasher (deterministic hashers
    /// make bucket placement reproducible in tests).
    pub fn with_hasher(initial_buckets: u64, hasher: S) -> Self {
        Self::with_settings(initial_buckets, hasher, ArenaConfig::default())
    }

    /// An empty table with full control over the initial bucket count,
    /// hasher, and node-arena configuration.
    pub fn with_settings(initial_buckets: u64, hasher: S, config: ArenaConfig) -> Self {
        let initial = initial_buckets.clamp(1, MAX_BUCKETS).next_power_of_two();
        let dict = Self {
            list: List::with_config(config),
            buckets: SegmentTable::new(initial as usize, MAX_BUCKETS as usize),
            size: AtomicU64::new(initial),
            count: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            bucket_inits: AtomicU64::new(0),
            hasher,
        };
        // Bucket 0's sentinel (split-order key 0: the least position) is
        // the recursion root of every lazy initialization; install it
        // while construction is still single-threaded.
        let mut cursor = dict.list.cursor();
        let prepared = dict
            .list
            .prepare_insert(SplitItem {
                so: sentinel_order(0),
                key: None,
                value: None,
            })
            .expect("fresh arena cannot be exhausted");
        cursor
            .try_insert(prepared)
            .expect("single-threaded insert into an empty list cannot fail");
        cursor.update(); // the cursor now visits the sentinel
        let published = dict
            .list
            .publish_entry(dict.buckets.get_or_alloc(0), &cursor);
        debug_assert!(published, "no one can race construction");
        drop(cursor);
        dict
    }

    fn split_key(&self, key: &K) -> (u64, u64) {
        let hash = self.hasher.hash_one(key);
        (hash, data_order(hash))
    }

    /// A cursor positioned at (or just after) bucket `bucket`'s
    /// sentinel, initializing the bucket if this is its first touch.
    ///
    /// Never fails, even on an exhausted capped pool: a sentinel that
    /// cannot be allocated is *skipped* (see
    /// [`ResizableHashDict::init_bucket`]) — the returned cursor is
    /// positioned correctly either way.
    fn bucket_cursor(&self, bucket: u64) -> Cursor<'_, SplitItem<K, V>, R> {
        let root = self.buckets.get_or_alloc(bucket as usize);
        if let Some(cursor) = self.list.cursor_at(root) {
            return cursor;
        }
        self.init_bucket(bucket)
    }

    /// Lazy bucket initialization: insert (or find) the sentinel by
    /// searching from the parent bucket, then publish it. Any number of
    /// threads may race here; the list's same-position CAS ensures one
    /// sentinel, the root's publication CAS ensures one winner, and
    /// every loser's count is released (by `PreparedInsert`'s drop and
    /// the failed swing respectively).
    ///
    /// The search resumes from the parent bucket's root — recursively,
    /// each ancestor initializing from *its* parent — so a miss never
    /// degrades to a head-of-list scan. Bucket 0 is the recursion's base
    /// case: published at construction, its sentinel (split-order 0) is
    /// the list's least position, so the head cursor *is* its parent.
    ///
    /// A sentinel is a traversal *shortcut*, never a correctness
    /// requirement: after `find_so` the cursor already sits at the first
    /// position `>=` the sentinel's split order, which is exactly where
    /// any search inside this bucket must start. So when the sentinel
    /// allocation hits an exhausted capped pool, the initialization
    /// degrades instead of failing — the correctly positioned cursor is
    /// returned as-is and the bucket root stays unpublished, leaving a
    /// later (post-pressure) touch to retry the shortcut. This keeps
    /// `find`/`remove` total on a pool full of live nodes.
    fn init_bucket(&self, bucket: u64) -> Cursor<'_, SplitItem<K, V>, R> {
        let mut cursor = if bucket == 0 {
            self.list.cursor()
        } else {
            self.bucket_cursor(parent_bucket(bucket))
        };
        let so = sentinel_order(bucket);
        if !find_so(&mut cursor, so, None) {
            let mut prepared = match self.list.try_prepare_insert(SplitItem {
                so,
                key: None,
                value: None,
            }) {
                Ok(prepared) => prepared,
                // Exhausted pool: degrade (see above) rather than shed
                // here — an in-window shed cannot drain garbage this
                // thread's own epoch pin still protects (I12).
                Err((_, AllocError)) => return cursor,
            };
            loop {
                match cursor.try_insert(prepared) {
                    Ok(()) => {
                        cursor.update(); // visit the sentinel we inserted
                        break;
                    }
                    Err(back) => prepared = back,
                }
                // Resume from the nearest undeleted predecessor, never
                // the bucket root (let alone the head).
                // INVARIANT: I10
                cursor.resume();
                if find_so(&mut cursor, so, None) {
                    break; // a racing initializer's sentinel won; drop ours
                }
            }
        }
        let root = self.buckets.get_or_alloc(bucket as usize);
        if self.list.publish_entry(root, &cursor) {
            self.bucket_inits.fetch_add(1, Ordering::Relaxed);
        }
        cursor
    }

    /// The paper's `Insert` (Fig. 12) over split order, plus the
    /// `Fetch&Add` count publication and the load-factor check.
    /// Infallible wrapper over [`ResizableHashDict::try_insert`] for the
    /// [`Dictionary`] trait — panics only when even a shed-and-retry
    /// could not find memory.
    fn insert_impl(&self, key: K, value: V) -> bool {
        self.try_insert(key, value)
            .expect("node pool exhausted (capped arena, even after shed_memory)")
    }

    /// Insert with explicit memory-pressure handling: on a capped,
    /// exhausted pool this *sheds* reclaimable memory and retries once
    /// before surfacing [`AllocError`].
    ///
    /// The shed runs with the failed attempt's cursor **dropped**, which
    /// is the whole point: under the epoch backend an in-operation
    /// allocation failure cannot drain garbage this operation's own
    /// window retired (the thread's pin holds the grace period open —
    /// I12), so the arena's internal pressure path comes up empty while
    /// limbo holds reclaimable nodes. Closing the window first lets
    /// [`List::shed_memory`]'s advance rounds age that garbage out; the
    /// retry then allocates from it. Service layers get the same
    /// behaviour per request without wiring any policy themselves.
    ///
    /// # Errors
    ///
    /// [`AllocError`] when the pool is capped and exhausted even after
    /// the shed — i.e. the memory is genuinely live (or held by a
    /// stalled reader: see the `epoch_pin_lag` gauge in
    /// [`ResizableHashDict::mem_stats`]).
    pub fn try_insert(&self, key: K, value: V) -> Result<bool, AllocError> {
        match self.insert_attempt(key, value) {
            Ok(won) => Ok(won),
            Err((key, value)) => {
                self.shed_memory();
                self.insert_attempt(key, value).map_err(|_| AllocError)
            }
        }
    }

    /// Memory-pressure shed on the underlying list's arena (magazine
    /// flush + bounded epoch limbo drain). Returns nodes made
    /// allocatable. See [`List::shed_memory`].
    pub fn shed_memory(&self) -> usize {
        self.list.shed_memory()
    }

    /// One bounded insert attempt. `Err` hands the key/value back when
    /// the node pool is exhausted, with the attempt's cursor already
    /// dropped — no protection window (epoch pin) left open — so the
    /// caller can shed and retry.
    fn insert_attempt(&self, key: K, value: V) -> Result<bool, (K, V)> {
        let (hash, so) = self.split_key(&key);
        let size = self.size.load(Ordering::Acquire);
        let mut cursor = self.bucket_cursor(hash & (size - 1));
        if find_so(&mut cursor, so, Some(&key)) {
            return Ok(false);
        }
        let mut prepared = match self.list.try_prepare_insert(SplitItem {
            so,
            key: Some(key),
            value: Some(value),
        }) {
            Ok(prepared) => prepared,
            Err((item, _)) => {
                drop(cursor); // close the protection window before the shed
                return Err((
                    item.key.expect("data items carry their key"),
                    item.value.expect("data items carry their value"),
                ));
            }
        };
        // Pre-charge the item count *before* the linking CAS. A remover
        // can delete the freshly linked item (and decrement) before a
        // post-link increment would run, transiently underflowing the
        // counter; charging first keeps every decrement matched by an
        // earlier increment, so `count` never wraps below zero.
        self.count.fetch_add(1, Ordering::AcqRel);
        // WAIT-FREE: lock-free, not wait-free — each retry means another
        // operation's CAS succeeded at this position (§4.1's <= p-1
        // amortized retries); the fetch_sub below runs at most once, on
        // the exit path, and RMWs cannot fail.
        loop {
            match cursor.try_insert(prepared) {
                Ok(()) => break,
                Err(back) => prepared = back,
            }
            // Back_link-guided retry: revalidate at the nearest undeleted
            // predecessor instead of re-deriving the bucket.
            // INVARIANT: I10
            cursor.resume();
            if find_so(&mut cursor, so, prepared.value().key.as_ref()) {
                // Concurrent insert won with the same key: give back our
                // own pre-charge (matched, so this cannot underflow).
                self.count.fetch_sub(1, Ordering::AcqRel);
                return Ok(false);
            }
        }
        drop(cursor);
        self.published_insert();
        Ok(true)
    }

    /// Runs the load-factor check after a successful (already counted)
    /// insertion and doubles the bucket count when it crosses
    /// [`LOAD_FACTOR`]. The doubling is a single CAS — no retry: losers'
    /// counts re-trigger the check on their own inserts, and a stale-size
    /// reader merely starts its traversal one sentinel earlier.
    fn published_insert(&self) {
        let count = self.count.load(Ordering::Acquire);
        let size = self.size.load(Ordering::Acquire);
        if count > size.saturating_mul(LOAD_FACTOR)
            && size < MAX_BUCKETS
            && self
                .size
                .compare_exchange(size, size * 2, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.splits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The paper's `Delete` (Fig. 13) over split order. Sentinels are
    /// never matched (their key slot is `None`), so only items die.
    fn remove_impl(&self, key: &K) -> bool {
        let (hash, so) = self.split_key(key);
        let size = self.size.load(Ordering::Acquire);
        let mut cursor = self.bucket_cursor(hash & (size - 1));
        // WAIT-FREE: lock-free, not wait-free — a failed TryDelete means
        // a concurrent operation invalidated the cursor (its CAS
        // succeeded), so retrying is the Fig. 13 loop; the fetch_sub is
        // one unconditional RMW on the success path.
        loop {
            if !find_so(&mut cursor, so, Some(key)) {
                return false;
            }
            if cursor.try_delete() {
                self.count.fetch_sub(1, Ordering::AcqRel);
                return true;
            }
            // Back_link-guided retry.
            // INVARIANT: I10
            cursor.resume();
        }
    }

    /// Runs `f` on the value stored under `key`, without cloning.
    pub fn with_value<O>(&self, key: &K, f: impl FnOnce(&V) -> O) -> Option<O> {
        let (hash, so) = self.split_key(key);
        let size = self.size.load(Ordering::Acquire);
        let mut cursor = self.bucket_cursor(hash & (size - 1));
        if find_so(&mut cursor, so, Some(key)) {
            cursor.get().and_then(|item| item.value.as_ref()).map(f)
        } else {
            None
        }
    }

    /// The current bucket count (a power of two; grows, never shrinks).
    pub fn bucket_count(&self) -> u64 {
        self.size.load(Ordering::Acquire)
    }

    /// Completed bucket-count doublings since construction.
    pub fn doublings(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }

    /// Bucket sentinels published so far (lazily — touched buckets only).
    pub fn initialized_buckets(&self) -> u64 {
        // +1: bucket 0 is published at construction, outside the counter.
        self.bucket_inits.load(Ordering::Relaxed) + 1
    }

    /// The keys currently present, in split (bit-reversed hash) order.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        self.list.for_each(|item| {
            if let Some(k) = &item.key {
                out.push(k.clone());
            }
        });
        out
    }

    /// Operation counters of the underlying list.
    pub fn list_stats(&self) -> ListStats {
        self.list.stats()
    }

    /// Memory-protocol counters of the underlying arena (§5 traffic).
    pub fn mem_stats(&self) -> MemStats {
        self.list.mem_stats()
    }

    /// Quiescent reference-count audit of the underlying list, with the
    /// published bucket roots' counts accounted for (testing hook; see
    /// [`List::audit_refcounts`]).
    ///
    /// # Errors
    ///
    /// Describes the first node whose count drifted.
    pub fn audit_refcounts(&mut self) -> Result<(), String> {
        self.list.flush_node_caches();
        let list = &mut self.list;
        let mut roots = Vec::new();
        self.buckets.for_each_allocated(|_, root| roots.push(root));
        list.audit_refcounts_with_entries(roots)
    }

    /// Extended structural invariant check at quiescence (testing hook):
    ///
    /// 1. the list is a well-formed §3 chain ([`List::check_structure`]);
    /// 2. split-order keys are **strictly** increasing along the list
    ///    (bit-reversed key order monotone; strictness doubles as the
    ///    no-duplicate-sentinel / no-duplicate-logical-key check);
    /// 3. every item's split-order key matches its key's hash, and the
    ///    low bit separates sentinels from items;
    /// 4. every published bucket shortcut points at a sentinel that is
    ///    reachable in the list walk, with the right split-order key,
    ///    and bucket 0 is published;
    /// 5. the `Fetch&Add` count equals the number of items in the list.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String>
    where
        K: Clone,
    {
        self.list.check_structure()?;
        // One unprotected walk (quiescent: &mut self) snapshots the chain.
        let mut walk: Vec<(u64, Option<K>)> = Vec::new();
        self.list
            .for_each_unprotected(|item| walk.push((item.so, item.key.clone())));
        for pair in walk.windows(2) {
            let (a_so, a_key) = &pair[0];
            let (b_so, b_key) = &pair[1];
            if cmp_item(*a_so, a_key.as_ref(), *b_so, b_key.as_ref()) != CmpOrdering::Less {
                return Err(format!(
                    "split order not strictly increasing: {a_so:#x} then {b_so:#x} \
                     (duplicate logical key or sentinel)"
                ));
            }
        }
        let mut items = 0u64;
        for (so, key) in &walk {
            match key {
                Some(k) => {
                    items += 1;
                    if so & 1 == 0 {
                        return Err(format!("item with sentinel-parity order key {so:#x}"));
                    }
                    if *so != data_order(self.hasher.hash_one(k)) {
                        return Err(format!("item order key {so:#x} does not match its hash"));
                    }
                }
                None => {
                    if so & 1 != 0 {
                        return Err(format!("sentinel with item-parity order key {so:#x}"));
                    }
                }
            }
        }
        let sentinels: std::collections::HashSet<u64> = walk
            .iter()
            .filter(|(_, k)| k.is_none())
            .map(|(so, _)| *so)
            .collect();
        let size = self.bucket_count();
        let mut bucket_err = None;
        self.buckets.for_each_allocated(|b, root| {
            if bucket_err.is_some() {
                return;
            }
            let b = b as u64;
            let Some(entry) = self
                .list
                .with_entry(root, |item| (item.so, item.key.is_none()))
            else {
                return; // unpublished slot — never touched
            };
            let (so, is_sentinel) = entry;
            if !is_sentinel {
                bucket_err = Some(format!("bucket {b} shortcut points at a non-sentinel"));
            } else if so != sentinel_order(b) {
                bucket_err = Some(format!(
                    "bucket {b} shortcut order key {so:#x}, expected {:#x}",
                    sentinel_order(b)
                ));
            } else if !sentinels.contains(&so) {
                bucket_err = Some(format!("bucket {b} sentinel unreachable from the list"));
            } else if b >= size {
                bucket_err = Some(format!(
                    "bucket {b} published beyond the bucket count {size}"
                ));
            }
        });
        if let Some(e) = bucket_err {
            return Err(e);
        }
        if !sentinels.contains(&sentinel_order(0)) {
            return Err("bucket 0 sentinel missing".into());
        }
        let count = self.count.load(Ordering::Acquire);
        if count != items {
            return Err(format!(
                "published count {count} != {items} items in the list"
            ));
        }
        Ok(())
    }

    /// Direct read-only access to the underlying list (experiments).
    pub fn as_list(&self) -> &List<SplitItem<K, V>, R> {
        &self.list
    }
}

impl<K, V, R> Default for ResizableHashDict<K, V, RandomState, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S, R> Drop for ResizableHashDict<K, V, S, R>
where
    K: Send + Sync,
    V: Send + Sync,
    S: BuildHasher,
    R: Reclaimer,
{
    fn drop(&mut self) {
        // Retire every published shortcut so its count does not keep the
        // sentinel chain alive past the list's own root cascade.
        let list = &self.list;
        self.buckets
            .for_each_allocated(|_, root| list.retire_entry(root));
    }
}

impl<K, V, S, R> Dictionary<K, V> for ResizableHashDict<K, V, S, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.with_value(key, V::clone)
    }

    fn contains(&self, key: &K) -> bool {
        let (hash, so) = self.split_key(key);
        let size = self.size.load(Ordering::Acquire);
        let mut cursor = self.bucket_cursor(hash & (size - 1));
        find_so(&mut cursor, so, Some(key))
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Acquire) as usize
    }
}

impl<K, V, S, R> fmt::Debug for ResizableHashDict<K, V, S, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResizableHashDict")
            .field("len", &self.len())
            .field("buckets", &self.bucket_count())
            .field("doublings", &self.doublings())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pass-through hasher (`hash_one(k) == k` for u64) so bucket
    /// placement is deterministic.
    #[derive(Clone, Default)]
    struct IdentityBuild;

    struct IdentityHasher(u64);

    impl BuildHasher for IdentityBuild {
        type Hasher = IdentityHasher;
        fn build_hasher(&self) -> IdentityHasher {
            IdentityHasher(0)
        }
    }

    impl std::hash::Hasher for IdentityHasher {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for (i, b) in bytes.iter().enumerate().take(8) {
                self.0 |= u64::from(*b) << (8 * i);
            }
        }
        fn write_u64(&mut self, v: u64) {
            self.0 = v;
        }
    }

    fn identity_dict(buckets: u64) -> ResizableHashDict<u64, u64, IdentityBuild> {
        ResizableHashDict::with_hasher(buckets, IdentityBuild)
    }

    #[test]
    fn split_order_helpers() {
        assert_eq!(sentinel_order(0), 0);
        assert!(sentinel_order(1) > sentinel_order(0));
        // Parent sentinel always precedes the child's.
        for b in 1u64..64 {
            assert!(sentinel_order(parent_bucket(b)) < sentinel_order(b));
        }
        // Items order after their bucket's sentinel and before the next
        // split's (identity hash, 4 buckets: hash 5 lives in bucket 1).
        assert!(data_order(5) > sentinel_order(1));
        assert!(sentinel_order(1) & 1 == 0 && data_order(5) & 1 == 1);
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let d = identity_dict(2);
        assert!(d.insert(1, 10));
        assert!(d.insert(2, 20));
        assert_eq!(d.find(&1), Some(10));
        assert_eq!(d.find(&2), Some(20));
        assert_eq!(d.find(&3), None);
        assert!(d.remove(&1));
        assert!(!d.remove(&1));
        assert_eq!(d.find(&1), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn duplicate_keys_rejected_first_insert_wins() {
        let d = identity_dict(2);
        assert!(d.insert(7, 70));
        assert!(!d.insert(7, 71));
        assert_eq!(d.find(&7), Some(70));
    }

    #[test]
    fn grows_across_multiple_doublings_without_losing_keys() {
        let mut d = identity_dict(2);
        for k in 0..200u64 {
            assert!(d.insert(k, k * 2));
        }
        assert!(
            d.doublings() >= 3,
            "200 items over 2 initial buckets must double ≥ 3 times, saw {}",
            d.doublings()
        );
        assert!(d.bucket_count() >= 16);
        for k in 0..200u64 {
            assert_eq!(d.find(&k), Some(k * 2), "key {k} lost in growth");
        }
        assert_eq!(d.len(), 200);
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }

    #[test]
    fn removal_works_through_and_after_growth() {
        let mut d = identity_dict(2);
        for k in 0..100u64 {
            d.insert(k, k);
        }
        for k in (0..100u64).step_by(2) {
            assert!(d.remove(&k));
        }
        assert_eq!(d.len(), 50);
        for k in 0..100u64 {
            assert_eq!(d.find(&k).is_some(), k % 2 == 1);
        }
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }

    #[test]
    fn stale_size_lookups_still_find_items() {
        // Simulate a reader using a coarser size: traversal from the
        // parent bucket's sentinel must still reach the item.
        let d = identity_dict(2);
        for k in 0..64u64 {
            d.insert(k, k + 1000);
        }
        assert!(d.bucket_count() > 2);
        // Keys that moved to finer buckets remain reachable via find
        // (which uses the *current* size) — and via a traversal from
        // bucket 1's coarse sentinel, which precedes them all.
        let mut cursor = d.bucket_cursor(1);
        let mut seen = 0;
        while !cursor.is_at_end() {
            if cursor.get().is_some_and(|i| i.key.is_some()) {
                seen += 1;
            }
            if !cursor.next() {
                break;
            }
        }
        assert_eq!(seen, 32, "all odd keys ordered after bucket 1's sentinel");
    }

    #[test]
    fn sentinels_are_invisible_to_the_dictionary_api() {
        let d = identity_dict(2);
        for k in 0..32u64 {
            d.insert(k, k);
        }
        assert_eq!(d.len(), 32);
        assert_eq!(d.keys().len(), 32);
        // Sentinels outnumber two initial buckets by now, but no key is
        // findable that was not inserted.
        for k in 32..64u64 {
            assert!(!d.contains(&k));
        }
    }

    #[test]
    fn default_hasher_table_behaves() {
        let mut d: ResizableHashDict<String, usize> = ResizableHashDict::with_initial_buckets(2);
        for i in 0..96usize {
            assert!(d.insert(format!("key-{i}"), i));
        }
        assert!(d.doublings() >= 3);
        for i in 0..96usize {
            assert_eq!(d.find(&format!("key-{i}")), Some(i));
        }
        d.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_inserts_agree_on_one_winner_per_key() {
        let d = std::sync::Arc::new(identity_dict(2));
        let wins = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..128u64 {
                        if d.insert(k, k) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 128);
        assert_eq!(d.len(), 128);
        let mut d = std::sync::Arc::try_unwrap(d).ok().unwrap();
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }

    #[test]
    fn smoke_resizable_tiny_churn() {
        // Miri-sized: small arena, few keys, still crosses one doubling.
        let mut d: ResizableHashDict<u64, u64, IdentityBuild> = ResizableHashDict::with_settings(
            2,
            IdentityBuild,
            ArenaConfig::default().initial_capacity(64),
        );
        for k in 0..10u64 {
            assert!(d.insert(k, k));
        }
        for k in (0..10u64).step_by(2) {
            assert!(d.remove(&k));
        }
        assert!(d.doublings() >= 1);
        assert_eq!(d.len(), 5);
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }
}
