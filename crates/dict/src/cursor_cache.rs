//! Per-thread cached cursors (Träff & Pöter, arXiv:2010.15755).
//!
//! Their `lsingly_cursor` observation: most operations on a sorted list
//! land near the previous operation of the same thread, so remembering
//! the last visited neighbourhood converts the per-operation O(n)
//! positioning scan into O(distance-moved). Here the remembered position
//! is a counted [`EntryRoot`] per thread shard, re-pointed after every
//! operation via [`List::cache_entry`] and reopened via
//! [`List::cursor_at`].
//!
//! Invalidation is the subtle part: the anchor cell may be deleted (or
//! the list arbitrarily reshaped) between operations. The slot's count
//! keeps the cell readable — cell persistence — and invariant I10
//! (docs/PROTOCOL.md) guarantees that a cursor reopened from *any* held
//! node, after [`Cursor::resume`], observes every cell that is
//! continuously present. The one thing counts cannot preserve is key
//! ordering relative to a *new* search: a deleted anchor with key equal
//! to the search key would sit at-or-past the cells the search must
//! inspect, so [`CursorCache::open`] demands the caller's `usable`
//! predicate hold on the anchor (dictionaries pass
//! `anchor.key < search_key`, strictly) and falls back to the list head
//! otherwise.

use valois_core::{Cursor, EntryRoot, List, Reclaimer};
use valois_sync::sharded::Sharded;

/// Per-thread-shard cached list positions (see the module docs).
///
/// Slots hold counts on their anchors, which pins those cells (and the
/// `back_link` chains hanging off them) until the slot is re-pointed or
/// retired — owners must call [`CursorCache::retire_all`] before the
/// list is dropped, and may call it mid-flight to shed pinned memory
/// when a capped arena runs dry.
pub(crate) struct CursorCache<T: Send + Sync> {
    slots: Sharded<EntryRoot<T>>,
}

impl<T: Send + Sync> CursorCache<T> {
    pub(crate) fn new() -> Self {
        Self {
            slots: Sharded::new(),
        }
    }

    /// Opens a cursor at this thread's cached position, or `None` when
    /// the slot is unpublished or its anchor fails `usable` (caller
    /// falls back to [`List::cursor`]).
    ///
    /// The returned cursor has been [`Cursor::resume`]d: if the anchor
    /// was deleted, it already back-walked to an undeleted predecessor.
    // INVARIANT: I10
    pub(crate) fn open<'a, R: Reclaimer>(
        &self,
        list: &'a List<T, R>,
        usable: impl FnOnce(&T) -> bool,
    ) -> Option<Cursor<'a, T, R>> {
        let mut cursor = list.cursor_at(self.slots.get())?;
        if cursor.with_anchor(usable) != Some(true) {
            return None;
        }
        cursor.resume();
        Some(cursor)
    }

    /// Re-points this thread's slot at `cursor`'s anchor (no-op when the
    /// cursor sits at the list head — nothing worth remembering).
    pub(crate) fn save<R: Reclaimer>(&self, list: &List<T, R>, cursor: &Cursor<'_, T, R>) {
        list.cache_entry(self.slots.get(), cursor);
    }

    /// Releases every slot's count (all threads' — quiescent callers
    /// only). Subsequent opens fall back to the head until positions are
    /// re-cached; used on teardown and under allocation pressure.
    pub(crate) fn retire_all<R: Reclaimer>(&self, list: &List<T, R>) {
        for slot in self.slots.shards() {
            list.retire_entry(slot);
        }
    }

    /// The slots, for refcount audits
    /// ([`List::audit_refcounts_with_entries`]).
    pub(crate) fn roots(&self) -> impl Iterator<Item = &EntryRoot<T>> {
        self.slots.shards()
    }
}

impl<T: Send + Sync> Default for CursorCache<T> {
    fn default() -> Self {
        Self::new()
    }
}
