//! The binary search tree dictionary (paper §4.2, Fig. 14).
//!
//! "Each cell in the tree has a left and right auxiliary node between
//! itself and its subtrees (these auxiliary nodes are present even if the
//! subtree is empty). … insertion of new cells occurs only at the leaves
//! … adding new cells to the tree is fairly straightforward, involving
//! simply swinging the pointer in the auxiliary node at the leaf."
//!
//! # Our concretization of the §4.2 deletion sketch
//!
//! The paper describes deletion in prose and one figure; this module makes
//! it concrete (the choices are documented here and in DESIGN.md):
//!
//! * An **empty subtree** is an auxiliary node whose link is null.
//! * Every delete first wins a per-cell **gate** (`LIVE → DYING`, one CAS) —
//!   the linearization point; losers observe the key as already absent.
//!   Searches treat a `DYING` cell as a routing node only.
//! * **≤ 1 child** (the paper's "short circuit"): the gated deleter marks
//!   the empty side's terminal aux with the pinned `DEAD` sentinel (so the
//!   side can never gain a child), then *shunts*: the parent's aux is swung
//!   from the cell to the cell's live-side auxiliary node — an aux→aux
//!   link, exactly the paper's "shunting them to the other branch".
//!   Searches that run into `DEAD` *help* perform the shunt, which keeps
//!   these deletions lock-free even if the deleter stalls.
//! * **2 children** (Fig. 14): the gated deleter grafts the victim's left
//!   auxiliary node under the in-order successor's (empty) left aux —
//!   "swing the auxiliary node preceding its (empty) left child to point at
//!   the left subtree of the cell to be deleted" — then shunts the parent
//!   aux to the victim's right aux. Grafting the *aux* (not the subtree
//!   root cell) makes the victim's left link remain the single point of
//!   truth, so concurrent inserts into that subtree are never lost.
//!   If the chosen successor is itself `DYING` the deleter re-searches;
//!   two-child deletion is therefore obstruction-free rather than
//!   lock-free — the paper explicitly leaves this case's behaviour open
//!   ("the effect of this deletion method … is unknown").
//! * Chains of auxiliary nodes (left by shunts and grafts) are collapsed
//!   opportunistically during traversal, one CAS per adjacent pair, like
//!   the list's `Update` (the same frozen-chain argument applies: an aux
//!   whose link is an aux can never point at a cell again, so collapsing
//!   over it loses no updates).

use std::fmt;
use std::mem::MaybeUninit;
use valois_sync::shim::atomic::{AtomicU64, AtomicU8, Ordering};
use valois_sync::shim::cell::UnsafeCell;
use valois_sync::Backoff;

use valois_mem::{Arena, ArenaConfig, Link, Managed, MemStats, NodeHeader, ReclaimedLinks};

use crate::traits::Dictionary;

const KIND_FREE: u8 = 0;
const KIND_AUX: u8 = 1;
const KIND_CELL: u8 = 2;
const KIND_DEAD: u8 = 3;

const LIVE: u8 = 0;
const DYING: u8 = 1;

/// Which side of a cell a descent takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// A tree node: an item cell (two side links, each always pointing at an
/// auxiliary node), an auxiliary node (one link in `left`), or the pinned
/// `DEAD` sentinel.
struct BstNode<K, V> {
    header: NodeHeader,
    kind: AtomicU8,
    /// Cells only: LIVE → DYING delete gate.
    del: AtomicU8,
    /// Cells: left side link (→ aux). Aux: its single outgoing link.
    left: Link<BstNode<K, V>>,
    /// Cells: right side link (→ aux). Aux/DEAD: unused.
    right: Link<BstNode<K, V>>,
    key: UnsafeCell<MaybeUninit<K>>,
    value: UnsafeCell<MaybeUninit<V>>,
}

// SAFETY: key/value slots follow the §5 ownership rules (exclusive at
// init/drain, shared reads only while counted and kind == CELL).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for BstNode<K, V> {}
// SAFETY: as above — shared reads require a counted reference.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BstNode<K, V> {}

impl<K, V> Default for BstNode<K, V> {
    fn default() -> Self {
        Self {
            header: NodeHeader::new_free(),
            kind: AtomicU8::new(KIND_FREE),
            del: AtomicU8::new(LIVE),
            left: Link::null(),
            right: Link::null(),
            key: UnsafeCell::new(MaybeUninit::uninit()),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

impl<K, V> BstNode<K, V> {
    fn kind(&self) -> u8 {
        self.kind.load(Ordering::Acquire)
    }

    fn is_dying(&self) -> bool {
        self.del.load(Ordering::Acquire) == DYING
    }

    fn side_link(&self, side: Side) -> &Link<BstNode<K, V>> {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// # Safety
    /// Counted reference held; kind == CELL.
    unsafe fn key(&self) -> &K {
        (*self.key.get()).assume_init_ref()
    }

    /// # Safety
    /// Counted reference held; kind == CELL.
    unsafe fn value(&self) -> &V {
        (*self.value.get()).assume_init_ref()
    }
}

impl<K: Send + Sync, V: Send + Sync> Managed for BstNode<K, V> {
    fn header(&self) -> &NodeHeader {
        &self.header
    }

    fn free_link(&self) -> &Link<Self> {
        &self.left
    }

    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        links.push(self.left.swap(std::ptr::null_mut()));
        links.push(self.right.swap(std::ptr::null_mut()));
        if self.kind() == KIND_CELL {
            // SAFETY: claim winner at count zero — exclusive.
            unsafe {
                (*self.key.get()).assume_init_drop();
                (*self.value.get()).assume_init_drop();
            }
        }
        self.kind.store(KIND_FREE, Ordering::Release);
        links
    }

    fn reset_for_alloc(&self) {
        self.left.write(std::ptr::null_mut());
        self.right.write(std::ptr::null_mut());
        self.del.store(LIVE, Ordering::Relaxed);
        debug_assert_eq!(self.kind(), KIND_FREE);
    }
}

/// Outcome of a tree search.
enum Search<K, V> {
    /// A live cell with the key; `in_aux` is the aux whose link is the cell
    /// (the "parent aux" needed for shunting). Both counted.
    Found {
        cell: *mut BstNode<K, V>,
        in_aux: *mut BstNode<K, V>,
    },
    /// Key absent; `terminal` (counted) is the aux whose link was null —
    /// the exact insertion point.
    NotFound { terminal: *mut BstNode<K, V> },
}

/// A non-blocking binary search tree dictionary (paper §4.2).
///
/// # Example
///
/// ```
/// use valois_dict::{Dictionary, BstDict};
///
/// let d: BstDict<i64, &str> = BstDict::new();
/// d.insert(2, "two");
/// d.insert(1, "one");
/// d.insert(3, "three");
/// assert_eq!(d.find(&1), Some("one"));
/// assert!(d.remove(&2), "internal node with two children");
/// assert_eq!(d.find(&2), None);
/// assert_eq!(d.find(&3), Some("three"));
/// ```
pub struct BstDict<K: Send + Sync, V: Send + Sync> {
    arena: Arena<BstNode<K, V>>,
    /// The tree entry: a counted link to the root auxiliary node
    /// (plays the role of a side link of a virtual super-cell).
    root: Link<BstNode<K, V>>,
    /// The pinned DEAD sentinel (counted by `dead_root` for its lifetime).
    dead_root: Link<BstNode<K, V>>,
    dead: *mut BstNode<K, V>,
    retries: AtomicU64,
}

// SAFETY: raw pointer fields are immutable after construction; shared
// state flows through the arena protocol.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for BstDict<K, V> {}
// SAFETY: as above — all shared mutation is CAS on counted links.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BstDict<K, V> {}

impl<K, V> BstDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    /// Creates an empty tree with the default arena configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Creates an empty tree with `config`.
    pub fn with_config(config: ArenaConfig) -> Self {
        let config = ArenaConfig {
            initial_capacity: config.initial_capacity.max(8),
            ..config
        };
        let arena: Arena<BstNode<K, V>> = Arena::with_config(config);
        let root_aux = arena.alloc().expect("pool too small");
        let dead = arena.alloc().expect("pool too small");
        let dict = Self {
            arena,
            root: Link::null(),
            dead_root: Link::null(),
            dead,
            retries: AtomicU64::new(0),
        };
        // SAFETY: single-threaded construction; fresh exclusive nodes.
        unsafe {
            (*root_aux).kind.store(KIND_AUX, Ordering::Release);
            (*dead).kind.store(KIND_DEAD, Ordering::Release);
            dict.arena.store_link(&dict.root, root_aux);
            dict.arena.store_link(&dict.dead_root, dead);
            dict.arena.release(root_aux);
            dict.arena.release(dead);
        }
        dict
    }

    fn bump_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Traversal primitives. Unsafe blocks rely on the §5 invariants: every
    // dereferenced pointer is counted; every link passed to the arena is a
    // counted link (side links of held cells, aux links of held auxes, or
    // the roots).
    // ------------------------------------------------------------------

    /// Walks the auxiliary chain hanging off `link` (a side link of a held
    /// cell, or the root), collapsing adjacent aux pairs opportunistically.
    /// Returns `(terminal_aux, value)` — both counted (`value` may be
    /// null = empty subtree); `value` is a cell or the DEAD sentinel.
    ///
    /// # Safety
    ///
    /// `link` must be a counted link the caller keeps alive for the call
    /// (a side link of a held cell, or one of the roots).
    unsafe fn walk_terminal(
        &self,
        link: &Link<BstNode<K, V>>,
    ) -> (*mut BstNode<K, V>, *mut BstNode<K, V>) {
        let mut a = self.arena.safe_read(link);
        debug_assert!(!a.is_null(), "side links always point at an aux");
        let mut v = self.arena.safe_read(&(*a).left);
        // WAIT-FREE: bounded by the aux-chain length; the collapse CAS is
        // one-shot per pair and its failure (someone else advanced) is
        // ignored, never retried in place.
        while !v.is_null() && (*v).kind() == KIND_AUX {
            // Collapse one aux of the frozen pair (list Fig. 5 line 7
            // analogue); failure means someone else already advanced.
            let _ = self.arena.swing(link, a, v);
            self.arena.release(a);
            a = v;
            v = self.arena.safe_read(&(*a).left);
        }
        (a, v)
    }

    /// Helps a stalled ≤1-child deletion: swings `in_aux`'s link from the
    /// dying `cell` to the cell's `live_side` auxiliary node.
    ///
    /// # Safety
    ///
    /// `cell` and `in_aux` must be counted references held by the caller.
    // GUARD: cell, in_aux — caller holds a count on each across the call.
    unsafe fn help_shunt(
        &self,
        cell: *mut BstNode<K, V>,
        in_aux: *mut BstNode<K, V>,
        live_side: Side,
    ) {
        let other = self.arena.safe_read((*cell).side_link(live_side));
        if !other.is_null() {
            let _ = self.arena.swing(&(*in_aux).left, cell, other);
            self.arena.release(other);
        }
    }

    /// Descends from the root looking for `key`.
    ///
    /// # Safety
    ///
    /// The dictionary must be alive (roots counted); the returned pointers
    /// are counted references the caller must release.
    unsafe fn search(&self, key: &K) -> Search<K, V> {
        'restart: loop {
            let (mut in_aux, mut cur) = self.walk_terminal(&self.root);
            loop {
                if cur.is_null() {
                    return Search::NotFound { terminal: in_aux };
                }
                debug_assert_ne!(
                    (*cur).kind(),
                    KIND_DEAD,
                    "DEAD is only reachable under its dying owner"
                );
                // cur is a cell.
                let side = {
                    let k = (*cur).key();
                    if key == k && !(*cur).is_dying() {
                        return Search::Found { cell: cur, in_aux };
                    }
                    if key < k {
                        Side::Left
                    } else {
                        Side::Right // includes key == k on a DYING cell
                    }
                };
                let (a, v) = self.walk_terminal((*cur).side_link(side));
                if !v.is_null() && (*v).kind() == KIND_DEAD {
                    // The side we want is the dying cell's dead side; its
                    // live side is the other one. Help and restart.
                    self.arena.release(v);
                    self.arena.release(a);
                    self.help_shunt(cur, in_aux, side.opposite());
                    self.arena.release(cur);
                    self.arena.release(in_aux);
                    self.bump_retry();
                    continue 'restart;
                }
                self.arena.release(in_aux);
                in_aux = a;
                self.arena.release(cur);
                cur = v;
            }
        }
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        // SAFETY: §5 invariants as documented on the helpers.
        unsafe {
            // Cheap existence probe before paying for allocation.
            match self.search(&key) {
                Search::Found { cell, in_aux } => {
                    self.arena.release(cell);
                    self.arena.release(in_aux);
                    return false;
                }
                Search::NotFound { terminal } => self.arena.release(terminal),
            }
            // Prepare the cell with its two (empty) auxiliary nodes; the
            // retry loop reuses it (paper Fig. 12 allocates once).
            let cell = self.arena.alloc().expect("BST node pool exhausted");
            let la = self.arena.alloc().expect("BST node pool exhausted");
            let ra = self.arena.alloc().expect("BST node pool exhausted");
            (*la).kind.store(KIND_AUX, Ordering::Release);
            (*ra).kind.store(KIND_AUX, Ordering::Release);
            (*(*cell).key.get()).write(key);
            (*(*cell).value.get()).write(value);
            (*cell).kind.store(KIND_CELL, Ordering::Release);
            self.arena.store_link(&(*cell).left, la);
            self.arena.store_link(&(*cell).right, ra);
            self.arena.release(la);
            self.arena.release(ra);
            let mut backoff = Backoff::new();
            loop {
                let found = {
                    let key = (*cell).key();
                    self.search(key)
                };
                match found {
                    Search::Found {
                        cell: existing,
                        in_aux,
                    } => {
                        self.arena.release(existing);
                        self.arena.release(in_aux);
                        self.arena.release(cell); // drains key/value/auxes
                        return false;
                    }
                    Search::NotFound { terminal } => {
                        // The leaf insertion: one CAS on the empty aux
                        // ("simply swinging the pointer in the auxiliary
                        // node at the leaf").
                        if self
                            .arena
                            .swing(&(*terminal).left, std::ptr::null_mut(), cell)
                        {
                            self.arena.release(terminal);
                            self.arena.release(cell); // the tree link owns it now
                            return true;
                        }
                        self.arena.release(terminal);
                        self.bump_retry();
                        backoff.spin();
                    }
                }
            }
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        // SAFETY: §5 invariants as documented on the helpers.
        unsafe {
            let (cell, in_aux) = match self.search(key) {
                Search::NotFound { terminal } => {
                    self.arena.release(terminal);
                    return false;
                }
                Search::Found { cell, in_aux } => (cell, in_aux),
            };
            // The delete gate: unique winner, linearization point.
            if (*cell)
                .del
                .compare_exchange(LIVE, DYING, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                self.arena.release(cell);
                self.arena.release(in_aux);
                return false;
            }
            // We own cell's deletion. Classify (and reclassify if racing
            // inserts land in an empty side before we mark it).
            let mut backoff = Backoff::new();
            loop {
                let (lt_aux, lt) = self.walk_terminal(&(*cell).left);
                if lt.is_null() {
                    // Left empty: mark it, shunt parent to the right aux.
                    if self
                        .arena
                        .swing(&(*lt_aux).left, std::ptr::null_mut(), self.dead_ref())
                    {
                        self.arena.release(lt_aux);
                        self.finish_shunt(cell, in_aux, Side::Right);
                        return true;
                    }
                    self.arena.release(lt_aux);
                    self.bump_retry();
                    backoff.spin();
                    continue; // an insert landed; reclassify
                }
                let (rt_aux, rt) = self.walk_terminal(&(*cell).right);
                if rt.is_null() {
                    if self
                        .arena
                        .swing(&(*rt_aux).left, std::ptr::null_mut(), self.dead_ref())
                    {
                        self.arena.release(rt_aux);
                        self.arena.release(lt_aux);
                        self.arena.release(lt);
                        self.finish_shunt(cell, in_aux, Side::Left);
                        return true;
                    }
                    self.arena.release(rt_aux);
                    self.arena.release(lt_aux);
                    self.arena.release(lt);
                    self.bump_retry();
                    backoff.spin();
                    continue;
                }
                // Two children (Fig. 14): graft our left aux under the
                // in-order successor, then shunt to the right.
                let grafted = self.graft_under_successor(cell);
                self.arena.release(lt_aux);
                self.arena.release(lt);
                self.arena.release(rt_aux);
                self.arena.release(rt);
                if grafted {
                    self.finish_shunt(cell, in_aux, Side::Right);
                    return true;
                }
                self.bump_retry();
                backoff.spin();
            }
        }
    }

    /// Fig. 14 step: find the in-order successor (leftmost cell of the
    /// right subtree) and CAS its empty left terminal from null to the
    /// victim's left auxiliary node. Returns false to request a retry
    /// (successor dying or a raced CAS).
    ///
    /// # Safety
    ///
    /// `cell` must be a counted reference to the gated (DYING) victim.
    // GUARD: cell — caller holds a count on the victim across the call.
    unsafe fn graft_under_successor(&self, cell: *mut BstNode<K, V>) -> bool {
        let (ra, rv) = self.walk_terminal(&(*cell).right);
        self.arena.release(ra);
        if rv.is_null() || (*rv).kind() != KIND_CELL {
            // Right subtree vanished (became empty) — reclassify upstream.
            self.arena.release(rv);
            return false;
        }
        let mut s = rv;
        // WAIT-FREE: pure leftward descent, bounded by tree depth; the one
        // graft CAS is one-shot — on failure the *caller* reclassifies
        // (and backs off) rather than this loop retrying in place.
        loop {
            if (*s).is_dying() {
                // Successor being deleted: obstruction-free retry (the
                // paper leaves the 2-child case open; see module docs).
                self.arena.release(s);
                return false;
            }
            let (a, v) = self.walk_terminal(&(*s).left);
            if v.is_null() {
                // s is the successor; graft.
                let lfirst = self.arena.safe_read(&(*cell).left);
                debug_assert!(!lfirst.is_null());
                let ok = self.arena.swing(&(*a).left, std::ptr::null_mut(), lfirst);
                self.arena.release(lfirst);
                self.arena.release(a);
                self.arena.release(s);
                return ok;
            }
            if (*v).kind() == KIND_DEAD {
                // s's left is marked: s is mid-deletion.
                self.arena.release(v);
                self.arena.release(a);
                self.arena.release(s);
                return false;
            }
            // Descend left.
            self.arena.release(a);
            self.arena.release(s);
            s = v;
        }
    }

    /// Swings the parent aux from the dying cell to the cell's `live_side`
    /// auxiliary node, then releases the deleter's references. Helpers may
    /// have already done the swing (≤1-child case), so a failed CAS with a
    /// changed link is success.
    ///
    /// # Safety
    ///
    /// `cell` and `in_aux` must be counted references; this call consumes
    /// (releases) both.
    // GUARD: cell, in_aux — caller holds a count on each when calling;
    // both are consumed before return.
    unsafe fn finish_shunt(
        &self,
        cell: *mut BstNode<K, V>,
        in_aux: *mut BstNode<K, V>,
        live_side: Side,
    ) {
        let mut backoff = Backoff::new();
        loop {
            let other = self.arena.safe_read((*cell).side_link(live_side));
            debug_assert!(!other.is_null());
            let swung = self.arena.swing(&(*in_aux).left, cell, other);
            self.arena.release(other);
            if swung || (*in_aux).left.read() != cell {
                break;
            }
            self.bump_retry();
            backoff.spin();
        }
        self.arena.release(cell);
        self.arena.release(in_aux);
    }

    fn dead_ref(&self) -> *mut BstNode<K, V> {
        self.dead
    }

    fn find_impl<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        // SAFETY: §5 invariants as documented on the helpers.
        unsafe {
            match self.search(key) {
                Search::Found { cell, in_aux } => {
                    let r = f((*cell).value());
                    self.arena.release(cell);
                    self.arena.release(in_aux);
                    Some(r)
                }
                Search::NotFound { terminal } => {
                    self.arena.release(terminal);
                    None
                }
            }
        }
    }

    /// Runs `f` on the value stored under `key`, without cloning.
    pub fn with_value<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.find_impl(key, f)
    }

    /// In-order live keys (sorted by construction of the traversal).
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        // SAFETY: read-only counted traversal.
        unsafe {
            self.in_order(&self.root, &mut |cell| {
                if !(*cell).is_dying() {
                    out.push((*cell).key().clone());
                }
            });
        }
        out
    }

    /// Counted in-order traversal applying `f` to every reachable cell.
    /// Iterative (explicit stack of counted references): recursion would
    /// overflow on degenerate (spine-shaped) trees.
    ///
    /// # Safety
    ///
    /// `link` must be a counted link the caller keeps alive; `f` receives
    /// counted references valid only for the duration of each call.
    unsafe fn in_order(&self, link: &Link<BstNode<K, V>>, f: &mut impl FnMut(*mut BstNode<K, V>)) {
        enum Step<K2, V2> {
            /// Explore the subtree hanging off this (held) cell-or-root.
            Descend(*mut BstNode<K2, V2>),
            /// Visit this (held) cell, then explore its right side.
            Visit(*mut BstNode<K2, V2>),
        }
        // Resolve a side link (or the root) to its first cell, if any.
        let resolve = |link: &Link<BstNode<K, V>>| -> *mut BstNode<K, V> {
            let (a, v) = self.walk_terminal(link);
            self.arena.release(a);
            if v.is_null() {
                return std::ptr::null_mut();
            }
            if (*v).kind() == KIND_CELL {
                v
            } else {
                self.arena.release(v);
                std::ptr::null_mut()
            }
        };
        let mut stack: Vec<Step<K, V>> = Vec::new();
        let first = resolve(link);
        if !first.is_null() {
            stack.push(Step::Descend(first));
        }
        while let Some(step) = stack.pop() {
            match step {
                Step::Descend(cell) => {
                    // Left subtree first, then the cell itself.
                    stack.push(Step::Visit(cell));
                    let left = resolve(&(*cell).left);
                    if !left.is_null() {
                        stack.push(Step::Descend(left));
                    }
                }
                Step::Visit(cell) => {
                    f(cell);
                    let right = resolve(&(*cell).right);
                    self.arena.release(cell);
                    if !right.is_null() {
                        stack.push(Step::Descend(right));
                    }
                }
            }
        }
    }

    /// Total CAS retries across operations (the §4.2 extra-work measure —
    /// experiment E6).
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Memory-protocol counters (§5 traffic).
    pub fn mem_stats(&self) -> MemStats {
        self.arena.stats()
    }

    /// Quiescent invariant check (testing hook): in-order keys strictly
    /// sorted and no dying cells remain reachable.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String>
    where
        K: Clone + Ord,
    {
        let mut dying = 0usize;
        let mut keys = Vec::new();
        // SAFETY: &mut self — quiescent.
        unsafe {
            self.in_order(&self.root, &mut |cell| {
                if (*cell).is_dying() {
                    dying += 1;
                } else {
                    keys.push((*cell).key().clone());
                }
            });
        }
        if dying > 0 {
            return Err(format!("{dying} dying cells still reachable at quiescence"));
        }
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("in-order keys not strictly sorted".into());
        }
        Ok(())
    }
}

impl Side {
    fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

impl<K, V> Default for BstDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send + Sync, V: Send + Sync> Drop for BstDict<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self in drop — quiescent. Release roots, cascade,
        // then sweep anything a cycle kept alive.
        unsafe {
            let r = self.root.swap(std::ptr::null_mut());
            let d = self.dead_root.swap(std::ptr::null_mut());
            self.arena.release(r);
            self.arena.release(d);
            use std::collections::HashSet;
            let mut garbage = Vec::new();
            self.arena.for_each_node(|p| {
                if (*p).kind() != KIND_FREE {
                    garbage.push(p);
                }
            });
            let set: HashSet<usize> = garbage.iter().map(|p| *p as usize).collect();
            for &g in &garbage {
                let _ = (*g).header().set_claim();
            }
            for &g in &garbage {
                let links = (*g).drain_links();
                for t in links.iter() {
                    if set.contains(&(t as usize)) {
                        (*t).header().decr_ref();
                    } else {
                        self.arena.release(t);
                    }
                }
            }
            for &g in &garbage {
                self.arena.reclaim_detached(g);
            }
        }
    }
}

impl<K, V> Dictionary<K, V> for BstDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.find_impl(key, V::clone)
    }

    fn contains(&self, key: &K) -> bool {
        self.find_impl(key, |_| ()).is_some()
    }

    fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: read-only counted traversal.
        unsafe {
            self.in_order(&self.root, &mut |cell| {
                if !(*cell).is_dying() {
                    n += 1;
                }
            });
        }
        n
    }
}

impl<K, V> fmt::Debug for BstDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BstDict")
            .field("len", &self.len())
            .field("retries", &self.retry_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let d: BstDict<i64, i64> = BstDict::new();
        for k in [50, 25, 75, 10, 30, 60, 90] {
            assert!(d.insert(k, k * 2));
        }
        for k in [50, 25, 75, 10, 30, 60, 90] {
            assert_eq!(d.find(&k), Some(k * 2));
        }
        assert_eq!(d.find(&99), None);
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn duplicates_rejected() {
        let d: BstDict<u32, &str> = BstDict::new();
        assert!(d.insert(1, "a"));
        assert!(!d.insert(1, "b"));
        assert_eq!(d.find(&1), Some("a"));
    }

    #[test]
    fn delete_leaf() {
        let mut d: BstDict<i64, ()> = BstDict::new();
        for k in [2, 1, 3] {
            d.insert(k, ());
        }
        assert!(d.remove(&1));
        assert_eq!(d.keys(), vec![2, 3]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn delete_one_child_left() {
        let mut d: BstDict<i64, ()> = BstDict::new();
        for k in [5, 3, 2] {
            d.insert(k, ()); // 3 has only a left child (2)
        }
        assert!(d.remove(&3));
        assert_eq!(d.keys(), vec![2, 5]);
        assert_eq!(d.find(&2), Some(()));
        d.check_invariants().unwrap();
    }

    #[test]
    fn delete_one_child_right() {
        let mut d: BstDict<i64, ()> = BstDict::new();
        for k in [5, 3, 4] {
            d.insert(k, ()); // 3 has only a right child (4)
        }
        assert!(d.remove(&3));
        assert_eq!(d.keys(), vec![4, 5]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn delete_two_children_fig14() {
        // The Fig. 14 shape: F with left subtree and a right subtree whose
        // leftmost cell is the in-order successor.
        let mut d: BstDict<char, ()> = BstDict::new();
        for k in ['f', 'b', 'j', 'a', 'd', 'h', 'l', 'g', 'i'] {
            d.insert(k, ());
        }
        assert!(d.remove(&'f'));
        assert_eq!(
            d.keys(),
            vec!['a', 'b', 'd', 'g', 'h', 'i', 'j', 'l'],
            "in-order preserved after two-child delete"
        );
        d.check_invariants().unwrap();
        // Everything still findable.
        for k in ['a', 'b', 'd', 'g', 'h', 'i', 'j', 'l'] {
            assert!(d.contains(&k), "lost {k}");
        }
    }

    #[test]
    fn delete_root_repeatedly() {
        let mut d: BstDict<u32, ()> = BstDict::new();
        for k in [4, 2, 6, 1, 3, 5, 7] {
            d.insert(k, ());
        }
        // Delete in root-first order, exercising all deletion cases.
        for k in [4, 5, 6, 2, 1, 3, 7] {
            assert!(d.remove(&k), "remove {k}");
            d.check_invariants().unwrap();
        }
        assert!(d.is_empty());
    }

    #[test]
    fn sorted_insert_then_full_drain() {
        let mut d: BstDict<u32, u32> = BstDict::new();
        for k in 0..100 {
            d.insert(k, k); // degenerate right spine
        }
        assert_eq!(d.len(), 100);
        for k in 0..100 {
            assert!(d.remove(&k), "remove {k}");
        }
        assert!(d.is_empty());
        d.check_invariants().unwrap();
    }

    #[test]
    fn random_churn_stays_sorted() {
        let mut d: BstDict<u64, u64> = BstDict::new();
        let mut x = 0x2545F491_4F6CDD1Du64;
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128;
            if x & 0x100 == 0 {
                assert_eq!(d.insert(k, x), model.insert(k, x).is_none(), "insert {k}");
                if model.contains_key(&k) && d.find(&k).is_none() {
                    panic!("inserted key {k} not found");
                }
            } else {
                assert_eq!(d.remove(&k), model.remove(&k).is_some(), "remove {k}");
            }
        }
        let keys: Vec<u64> = model.keys().copied().collect();
        assert_eq!(d.keys(), keys);
        d.check_invariants().unwrap();
    }

    #[test]
    fn reinsert_same_key_after_each_case() {
        let mut d: BstDict<i64, u32> = BstDict::new();
        // leaf
        d.insert(10, 0);
        assert!(d.remove(&10));
        assert!(d.insert(10, 1));
        assert_eq!(d.find(&10), Some(1));
        // one child
        d.insert(5, 0);
        assert!(d.remove(&10)); // 10 has left child 5
        assert!(d.insert(10, 2));
        // two children
        d.insert(20, 0);
        assert!(d.remove(&10));
        assert!(d.insert(10, 3));
        assert_eq!(d.find(&10), Some(3));
        d.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_spine_traversal_does_not_overflow() {
        // Ascending inserts build a pure right spine. Traverse it from a
        // thread with a deliberately tiny stack: a recursive in-order walk
        // would need one frame per level and overflow; the iterative walk
        // must not.
        let d: BstDict<u32, ()> = BstDict::new();
        let n = 3_000u32;
        for k in 0..n {
            d.insert(k, ());
        }
        std::thread::scope(|s| {
            let d = &d;
            let h = std::thread::Builder::new()
                .stack_size(64 * 1024)
                .spawn_scoped(s, move || d.keys())
                .unwrap();
            let keys = h.join().unwrap();
            assert_eq!(keys.len() as u32, n);
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
        });
    }

    #[test]
    fn drained_tree_memory_converges_under_traversal() {
        // Shunted-out aux chains are collapsed opportunistically by
        // traversals (one CAS per adjacent pair per pass); after a full
        // drain, repeated traversals must converge the structure back to
        // the 2-node skeleton (root aux + DEAD sentinel).
        let d: BstDict<u32, u32> = BstDict::new();
        let mut x = 0x5EED_BEEFu64;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 48) as u32;
            if x & 2 == 0 {
                d.insert(k, k);
            } else {
                d.remove(&k);
            }
        }
        for k in 0..48 {
            d.remove(&k);
        }
        assert_eq!(d.len(), 0);
        let mut live = d.mem_stats().live_nodes();
        for _ in 0..64 {
            let _ = d.keys(); // collapse one chain pair per position
            let now = d.mem_stats().live_nodes();
            assert!(now <= live, "traversal must never grow live nodes");
            live = now;
            if live == 2 {
                break;
            }
        }
        assert_eq!(live, 2, "converged skeleton: root aux + DEAD sentinel only");
    }

    #[test]
    fn drop_releases_all_values() {
        use valois_sync::shim::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let d: BstDict<u32, Probe> = BstDict::new();
            for k in [5, 2, 8, 1, 3, 7, 9] {
                d.insert(k, Probe);
            }
            d.remove(&5);
            d.remove(&1);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 7);
    }
}
