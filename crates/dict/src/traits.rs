//! The dictionary abstract data type (paper §4): "a collection of items
//! which are distinguished by distinct keys", with `Find`, `Insert`, and
//! `Delete`.

/// A concurrent dictionary (paper §4).
///
/// Keys are unique; `insert` refuses duplicates rather than overwriting
/// (the paper keeps items "distinguished by distinct keys" and its `Insert`
/// returns without effect when the key is present). All operations are
/// linearizable and, for the lock-free implementations in this crate,
/// non-blocking.
///
/// Implementations may panic on node-pool exhaustion if constructed with a
/// capped arena; the default configurations grow on demand.
pub trait Dictionary<K, V>: Send + Sync {
    /// Inserts `(key, value)` if `key` is absent. Returns `true` on
    /// insertion, `false` if the key was already present (the value is
    /// dropped).
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes the item with `key`. Returns `true` if an item was removed.
    fn remove(&self, key: &K) -> bool;

    /// Returns a clone of the value stored under `key`, if present.
    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone;

    /// Whether an item with `key` is present.
    fn contains(&self, key: &K) -> bool;

    /// Number of items. O(n) for the list structures; under concurrency
    /// the result is a best-effort snapshot.
    fn len(&self) -> usize;

    /// Whether the dictionary holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
