//! The hash-table dictionary (paper §4.1).
//!
//! "A straightforward extension of this implementation uses a hash table.
//! In this case, if we assume that the hash function evenly distributes the
//! operations across the lists, then we would expect the extra work done to
//! be O(1)." — each bucket is an independent [`SortedListDict`], so
//! contention (and the §4.1 retry cost) is divided by the bucket count;
//! experiment E4 sweeps bucket counts to show exactly this.

use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};

use valois_core::{ArenaConfig, Reclaimer, RefCount};

use crate::sorted_list::SortedListDict;
use crate::traits::Dictionary;

/// A non-blocking hash table: fixed buckets of sorted lock-free lists
/// (paper §4.1).
///
/// The bucket array is immutable after construction (the paper's design has
/// no resizing); pick `buckets` ≈ the expected item count for O(1)
/// operations.
///
/// # Example
///
/// ```
/// use valois_dict::{Dictionary, HashDict};
///
/// let d: HashDict<String, u32> = HashDict::with_buckets(64);
/// d.insert("a".into(), 1);
/// assert_eq!(d.find(&"a".to_string()), Some(1));
/// ```
pub struct HashDict<
    K: Send + Sync,
    V: Send + Sync,
    S: BuildHasher = RandomState,
    R: Reclaimer = RefCount,
> {
    buckets: Box<[SortedListDict<K, V, R>]>,
    hasher: S,
}

impl<K, V, R> HashDict<K, V, RandomState, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    /// Creates a table with a default bucket count (256).
    pub fn new() -> Self {
        Self::with_buckets(256)
    }

    /// Creates a table with `buckets` buckets (each with a small
    /// grow-on-demand arena).
    ///
    /// `buckets == 0` is silently clamped to 1 (a zero-bucket table cannot
    /// index, and the `%`-based bucket selection would divide by zero) —
    /// the table degenerates to a single sorted list rather than panic.
    /// Any other count, power of two or not, is used exactly as given: the
    /// index is `hash % buckets`, not a power-of-two mask.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, RandomState::new())
    }
}

impl<K, V, S, R> HashDict<K, V, S, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    /// Creates a table with `buckets` buckets and a custom hasher (e.g. a
    /// deterministic one for reproducible experiments).
    ///
    /// `buckets == 0` is clamped to 1, as in [`HashDict::with_buckets`].
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        let buckets = buckets.max(1);
        // Per-bucket pools start tiny; they double on demand.
        let config = ArenaConfig::new().initial_capacity(16);
        Self {
            buckets: (0..buckets)
                .map(|_| SortedListDict::with_config(config))
                .collect(),
            hasher,
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket(&self, key: &K) -> &SortedListDict<K, V, R> {
        let idx = (self.hasher.hash_one(key) as usize) % self.buckets.len();
        &self.buckets[idx]
    }

    /// Runs `f` on the value stored under `key`, without cloning.
    pub fn with_value<O>(&self, key: &K, f: impl FnOnce(&V) -> O) -> Option<O> {
        self.bucket(key).with_value(key, f)
    }

    /// All keys currently present, in no particular order (bucket by
    /// bucket; each bucket's keys are sorted internally).
    pub fn keys_unordered(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            out.extend(b.keys());
        }
        out
    }

    /// Items in the largest bucket (distribution diagnostic for E4).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Aggregated list-operation retries across buckets (E4's "extra
    /// work" measure).
    pub fn total_retries(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| {
                let s = b.list_stats();
                s.insert_retries() + s.delete_retries()
            })
            .sum()
    }

    /// Structural invariants of every bucket (testing hook).
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String>
    where
        K: Clone,
    {
        for (i, b) in self.buckets.iter_mut().enumerate() {
            b.check_invariants()
                .map_err(|e| format!("bucket {i}: {e}"))?;
        }
        Ok(())
    }
}

impl<K, V, R> Default for HashDict<K, V, RandomState, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    R: Reclaimer,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S, R> Dictionary<K, V> for HashDict<K, V, S, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.bucket(&key).insert(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.bucket(key).remove(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.bucket(key).find(key)
    }

    fn contains(&self, key: &K) -> bool {
        self.bucket(key).contains(key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }
}

impl<K, V, S, R> fmt::Debug for HashDict<K, V, S, R>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
    S: BuildHasher + Send + Sync,
    R: Reclaimer,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashDict")
            .field("buckets", &self.buckets.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let d: HashDict<u64, u64> = HashDict::with_buckets(8);
        for k in 0..100 {
            assert!(d.insert(k, k * 2));
        }
        for k in 0..100 {
            assert_eq!(d.find(&k), Some(k * 2));
        }
        assert_eq!(d.len(), 100);
        for k in (0..100).step_by(2) {
            assert!(d.remove(&k));
        }
        assert_eq!(d.len(), 50);
        assert!(!d.contains(&0));
        assert!(d.contains(&1));
    }

    #[test]
    fn duplicate_rejected_across_buckets() {
        let d: HashDict<u64, &str> = HashDict::with_buckets(4);
        assert!(d.insert(9, "a"));
        assert!(!d.insert(9, "b"));
        assert_eq!(d.find(&9), Some("a"));
    }

    #[test]
    fn single_bucket_degenerates_to_sorted_list() {
        let mut d: HashDict<u64, u64> = HashDict::with_buckets(1);
        for k in [3, 1, 2] {
            d.insert(k, k);
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.max_bucket_len(), 3);
        d.check_invariants().unwrap();
    }

    #[test]
    fn bucket_count_minimum_is_one() {
        // `with_buckets(0)` clamps to 1 (documented behavior): the table
        // degenerates to a single sorted list and every operation works.
        let mut d: HashDict<u64, u64> = HashDict::with_buckets(0);
        assert_eq!(d.bucket_count(), 1);
        for k in 0..32 {
            assert!(d.insert(k, k * 10));
        }
        for k in 0..32 {
            assert_eq!(d.find(&k), Some(k * 10));
        }
        for k in (0..32).step_by(2) {
            assert!(d.remove(&k));
        }
        assert_eq!(d.len(), 16);
        assert_eq!(d.max_bucket_len(), 16, "everything lives in bucket 0");
        d.check_invariants().unwrap();
    }

    /// Pass-through hasher: `hash_one(k) == k` for u64 keys, making bucket
    /// selection deterministic so the indexing rule itself is testable.
    struct IdentityBuild;
    struct IdentityHasher(u64);
    impl std::hash::Hasher for IdentityHasher {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 << 8) | u64::from(b);
            }
        }
        fn write_u64(&mut self, v: u64) {
            self.0 = v;
        }
    }
    impl std::hash::BuildHasher for IdentityBuild {
        type Hasher = IdentityHasher;
        fn build_hasher(&self) -> IdentityHasher {
            IdentityHasher(0)
        }
    }

    #[test]
    fn non_power_of_two_bucket_count_indexes_by_modulo() {
        // Regression pin for the `%`-based `bucket()` rule: with 7 buckets
        // and identity hashing, key k must land in bucket k % 7. A
        // mask-based (power-of-two) indexing would both skew the
        // distribution and send keys ≥ 7 to the wrong bucket.
        let mut d: HashDict<u64, u64, _> = HashDict::with_buckets_and_hasher(7, IdentityBuild);
        assert_eq!(d.bucket_count(), 7);
        for k in 0..70 {
            assert!(d.insert(k, k));
        }
        for k in 0..70u64 {
            assert!(
                std::ptr::eq(d.bucket(&k), &d.buckets[(k % 7) as usize]),
                "key {k} must select bucket {}",
                k % 7
            );
            assert_eq!(d.find(&k), Some(k));
        }
        // 70 identity-hashed keys over 7 buckets: exactly 10 each.
        assert_eq!(d.max_bucket_len(), 10, "modulo spreads residues evenly");
        d.check_invariants().unwrap();
    }

    #[test]
    fn keys_unordered_returns_everything() {
        let d: HashDict<u64, ()> = HashDict::with_buckets(8);
        for k in 0..100 {
            d.insert(k, ());
        }
        let mut keys = d.keys_unordered();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn distribution_is_reasonable() {
        let mut d: HashDict<u64, ()> = HashDict::with_buckets(16);
        for k in 0..1600 {
            d.insert(k, ());
        }
        // With 100 expected per bucket, no bucket should be pathological.
        assert!(
            d.max_bucket_len() < 400,
            "max {} too skewed",
            d.max_bucket_len()
        );
        d.check_invariants().unwrap();
    }
}
