//! Lock-free dictionaries built from the Valois linked list (paper §4).
//!
//! §4 of the paper shows the list as "a building block for other data
//! structures" and sketches four non-blocking dictionary implementations;
//! all four are here:
//!
//! * [`SortedListDict`] — a single sorted list (Figs. 11–13),
//! * [`HashDict`] — a hash table of sorted lists (§4.1; expected O(1)
//!   extra work),
//! * [`SkipListDict`] — a skip list as k sorted lists sharing cells
//!   (§4.1, after Pugh \[23, 24\]: bottom-up insertion, top-down deletion),
//! * [`BstDict`] — a binary search tree with auxiliary nodes on every
//!   child link (§4.2, Fig. 14 deletion).
//!
//! All implement the [`Dictionary`] trait so tests, baselines, and the
//! experiment harness are generic over implementations.
//!
//! The list-backed dictionaries ([`SortedListDict`], [`HashDict`],
//! [`ResizableHashDict`]) additionally take a reclamation-backend type
//! parameter (defaulting to the paper's counted protocol,
//! `valois_core::RefCount`); instantiate them with `valois_core::Epoch`
//! for uncounted traversal under epoch protection. [`SkipListDict`] and
//! [`BstDict`] manage multi-level/child links through backend-specific
//! counted invariants and stay on the counted backend.
//!
//! # Example
//!
//! ```
//! use valois_dict::{Dictionary, SortedListDict};
//!
//! let dict: SortedListDict<u32, String> = SortedListDict::new();
//! assert!(dict.insert(3, "three".into()));
//! assert!(!dict.insert(3, "again".into()), "keys are unique (§4.1)");
//! assert_eq!(dict.find(&3).as_deref(), Some("three"));
//! assert!(dict.remove(&3));
//! assert_eq!(dict.find(&3), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bst;
mod cursor_cache;
pub mod hash;
pub mod resizable;
pub mod skiplist;
pub mod sorted_list;
mod traits;

pub use bst::BstDict;
pub use hash::HashDict;
pub use resizable::ResizableHashDict;
pub use skiplist::SkipListDict;
pub use sorted_list::{Entry, SortedListDict};
pub use traits::Dictionary;
