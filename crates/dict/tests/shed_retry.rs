//! Regression tests for the capped-arena `AllocError` shed-and-retry
//! contract at the dictionary layer (the service-load path).
//!
//! Under the epoch backend every dictionary operation opens a protection
//! window (a cursor, pinning the thread's epoch slot). An allocation
//! that fails *inside* that window cannot drain the garbage the window's
//! own deletions retired — the pin holds the two-epoch grace period open
//! (invariant I12) — so before this fix a delete-then-insert burst on a
//! capped pool panicked with "node pool exhausted" while the pool was
//! full of reclaimable nodes. `ResizableHashDict::try_insert` now drops
//! the failed attempt's cursor, runs `shed_memory`, and retries.

use std::hash::RandomState;

use valois_core::ArenaConfig;
use valois_dict::{Dictionary, ResizableHashDict};
use valois_mem::{Epoch, Reclaimer, RefCount};

fn capped_dict<R: Reclaimer>(cap: usize) -> ResizableHashDict<u64, u64, RandomState, R> {
    ResizableHashDict::with_settings(
        4,
        RandomState::new(),
        ArenaConfig::new().initial_capacity(cap).max_nodes(cap),
    )
}

/// Fill a capped pool to refusal, delete everything (parking ~2 nodes
/// per item in limbo under Epoch), then insert fresh keys: the
/// shed-and-retry path must find the memory the bare in-window
/// allocation cannot.
fn delete_burst_then_insert_succeeds<R: Reclaimer>() {
    let cap = 128;
    let dict = capped_dict::<R>(cap);

    // Fill until the pool genuinely refuses (even shedding finds
    // nothing: every node is live).
    let mut filled = 0u64;
    while dict.try_insert(filled, filled).unwrap_or(false) {
        filled += 1;
    }
    assert!(filled >= 16, "capped pool too small to exercise the path");
    assert_eq!(dict.len() as u64, filled);

    // Delete everything: under Epoch the freed cells+aux nodes retire
    // into limbo (grace period pending), under RefCount they recycle
    // through magazines.
    for k in 0..filled {
        assert!(dict.remove(&k));
    }
    assert!(dict.is_empty());
    if !R::COUNTED_READS {
        assert!(
            dict.mem_stats().epoch_limbo_depth > 0,
            "deletes must have parked garbage in limbo"
        );
    }

    // Fresh keys (different hashes, so new sentinel splits may alloc
    // too): every insert must succeed — before the shed-and-retry fix
    // the epoch arm panicked here with a full-of-garbage pool.
    let fresh = filled / 2;
    for i in 0..fresh {
        let key = 1_000_000 + i;
        assert_eq!(
            dict.try_insert(key, i),
            Ok(true),
            "post-shed retry must find the reclaimed memory (key {key})"
        );
    }
    assert_eq!(dict.len() as u64, fresh);
}

/// The infallible `Dictionary::insert` rides the same shed path (it
/// only panics when even the shed comes up empty).
fn trait_insert_survives_delete_burst<R: Reclaimer>() {
    let cap = 96;
    let dict = capped_dict::<R>(cap);
    let mut filled = 0u64;
    while dict.try_insert(filled, filled).unwrap_or(false) {
        filled += 1;
    }
    for k in 0..filled {
        assert!(dict.remove(&k));
    }
    for i in 0..filled / 2 {
        assert!(dict.insert(2_000_000 + i, i), "insert must not panic");
    }
}

/// A genuinely full pool still reports the failure: shed-and-retry must
/// not mask true exhaustion (every node live).
fn true_exhaustion_still_surfaces<R: Reclaimer>() {
    let dict = capped_dict::<R>(64);
    let mut filled = 0u64;
    while dict.try_insert(filled, filled).unwrap_or(false) {
        filled += 1;
    }
    // No deletes: the memory is live, so the shed finds nothing and the
    // error surfaces (as Err, not a panic).
    assert!(dict.try_insert(u64::MAX, 0).is_err());
    // Existing keys stay readable and removable after the failure.
    assert_eq!(dict.find(&0), Some(0));
    assert!(dict.remove(&0));
}

mod refcount {
    use super::*;

    #[test]
    fn delete_burst_then_insert_succeeds() {
        super::delete_burst_then_insert_succeeds::<RefCount>();
    }

    #[test]
    fn trait_insert_survives_delete_burst() {
        super::trait_insert_survives_delete_burst::<RefCount>();
    }

    #[test]
    fn true_exhaustion_still_surfaces() {
        super::true_exhaustion_still_surfaces::<RefCount>();
    }
}

mod epoch {
    use super::*;

    #[test]
    fn delete_burst_then_insert_succeeds() {
        super::delete_burst_then_insert_succeeds::<Epoch>();
    }

    #[test]
    fn trait_insert_survives_delete_burst() {
        super::trait_insert_survives_delete_burst::<Epoch>();
    }

    #[test]
    fn true_exhaustion_still_surfaces() {
        super::true_exhaustion_still_surfaces::<Epoch>();
    }
}
