//! Backend-parameterized dictionary battery: each arm instantiates the
//! same test bodies for a concrete `(dictionary, reclamation backend)`
//! pair, so a regression in either backend — or in dict code that is
//! generic over the backend — fails by arm name.
//!
//! Three layers:
//!
//! * **Oracle scripts** (proptest-style, seeded in-repo RNG — the
//!   offline build cannot fetch proptest): random insert/remove/find
//!   scripts run against the dictionary and a `BTreeMap` side by side;
//!   every return value and every post-script lookup must agree.
//! * **Concurrent stress**: disjoint-range accounting, same-key insert
//!   races (one winner per key), and mixed churn conservation.
//! * **`smoke_` twins**: Miri-sized single-threaded roundtrips
//!   (`cargo +nightly miri test -p valois-dict smoke_`).
//!
//! Exact refcount audits stay in the refcount-typed suites
//! (`concurrent_dicts.rs`, `resizable_stress.rs`): under `Epoch`,
//! traversal is uncounted, so only structural invariants are checked
//! here (see `epoch_invariants_hold_after_churn` below).

use std::collections::BTreeMap;
use std::hash::RandomState;
use std::sync::atomic::{AtomicU64, Ordering};

use valois_core::{Epoch, RefCount};
use valois_dict::{Dictionary, HashDict, ResizableHashDict, SortedListDict};
use valois_sync::rng::SmallRng;

fn threads() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get().clamp(4, 8) as u64)
        .unwrap_or(4)
}

/// Runs seeded random scripts against `D` and a `BTreeMap` oracle.
/// Insert first-wins semantics: the dict refuses duplicates, so the
/// oracle inserts only when the key is vacant.
fn oracle_scripts_match_btreemap<D: Dictionary<u64, u64> + Default>() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0001 ^ (case * 0x9E37));
        let dict = D::default();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..300 {
            let x = rng.next_u64();
            let key = (x >> 8) % 48;
            match x & 3 {
                0 | 1 => {
                    let newly = !oracle.contains_key(&key);
                    assert_eq!(
                        dict.insert(key, x),
                        newly,
                        "case {case} step {step}: insert({key}) disagrees"
                    );
                    if newly {
                        oracle.insert(key, x);
                    }
                }
                2 => {
                    assert_eq!(
                        dict.remove(&key),
                        oracle.remove(&key).is_some(),
                        "case {case} step {step}: remove({key}) disagrees"
                    );
                }
                _ => {
                    assert_eq!(
                        dict.find(&key),
                        oracle.get(&key).copied(),
                        "case {case} step {step}: find({key}) disagrees"
                    );
                }
            }
        }
        assert_eq!(dict.len(), oracle.len(), "case {case}: length disagrees");
        for key in 0..48 {
            assert_eq!(
                dict.find(&key),
                oracle.get(&key).copied(),
                "case {case}: final find({key}) disagrees"
            );
            assert_eq!(dict.contains(&key), oracle.contains_key(&key));
        }
    }
}

/// Each thread owns a disjoint key range; every op must succeed exactly
/// once and the survivors are exactly the odd keys.
fn disjoint_ranges_hold<D: Dictionary<u64, u64> + Default>() {
    let dict = D::default();
    let t = threads();
    let per = 200u64;
    std::thread::scope(|s| {
        let dict = &dict;
        for tid in 0..t {
            s.spawn(move || {
                let base = tid * per;
                for k in base..base + per {
                    assert!(dict.insert(k, k + 1), "insert {k} must succeed");
                }
                for k in (base..base + per).step_by(2) {
                    assert!(dict.remove(&k), "remove {k} must succeed");
                }
            });
        }
    });
    assert_eq!(dict.len() as u64, t * per / 2);
    for k in 0..t * per {
        assert_eq!(dict.contains(&k), k % 2 == 1, "parity of {k}");
    }
}

/// All threads race to insert the same keys: exactly one winner per key.
fn insert_race_single_winner<D: Dictionary<u64, u64> + Default>() {
    let dict = D::default();
    let wins = AtomicU64::new(0);
    let keys = 80u64;
    std::thread::scope(|s| {
        let (dict, wins) = (&dict, &wins);
        for tid in 0..threads() {
            s.spawn(move || {
                for k in 0..keys {
                    if dict.insert(k, tid) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), keys, "one winner per key");
    assert_eq!(dict.len() as u64, keys);
}

/// Mixed churn against a small key space; net accounting must balance.
fn churn_balances<D: Dictionary<u64, u64> + Default>() {
    let dict = D::default();
    let inserted = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    std::thread::scope(|s| {
        let (dict, inserted, removed) = (&dict, &inserted, &removed);
        for tid in 0..threads() {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xBAC6_0001 ^ tid);
                for _ in 0..1_500 {
                    let x = rng.next_u64();
                    let key = (x >> 8) % 64;
                    if x & 1 == 0 {
                        if dict.insert(key, tid) {
                            inserted.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if dict.remove(&key) {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let net = inserted.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed);
    assert_eq!(dict.len() as u64, net, "insert/remove accounting");
}

/// Miri-sized twin: a handful of operations, single-threaded.
fn smoke_roundtrip<D: Dictionary<u64, u64> + Default>() {
    let dict = D::default();
    for k in 0..12u64 {
        assert!(dict.insert(k, k * 10));
    }
    assert!(!dict.insert(5, 99), "duplicate refused");
    for k in (0..12).step_by(3) {
        assert!(dict.remove(&k));
    }
    for k in 0..12u64 {
        assert_eq!(dict.find(&k), (k % 3 != 0).then_some(k * 10));
    }
    assert_eq!(dict.len(), 8);
}

/// Instantiates the battery for one `(name, dictionary type)` pair.
macro_rules! dict_arms {
    ($arm:ident, $ty:ty) => {
        mod $arm {
            use super::*;

            #[test]
            fn oracle_scripts() {
                oracle_scripts_match_btreemap::<$ty>();
            }

            #[test]
            fn disjoint_ranges() {
                disjoint_ranges_hold::<$ty>();
            }

            #[test]
            fn insert_races() {
                insert_race_single_winner::<$ty>();
            }

            #[test]
            fn churn() {
                churn_balances::<$ty>();
            }

            #[test]
            fn smoke_dict_roundtrip() {
                smoke_roundtrip::<$ty>();
            }
        }
    };
}

dict_arms!(sorted_refcount, SortedListDict<u64, u64, RefCount>);
dict_arms!(sorted_epoch, SortedListDict<u64, u64, Epoch>);
dict_arms!(hash_refcount, HashDict<u64, u64, RandomState, RefCount>);
dict_arms!(hash_epoch, HashDict<u64, u64, RandomState, Epoch>);
dict_arms!(resizable_refcount, ResizableHashDict<u64, u64, RandomState, RefCount>);
dict_arms!(resizable_epoch, ResizableHashDict<u64, u64, RandomState, Epoch>);

/// The epoch arms must hold the typed structural invariants too (the
/// trait-generic battery cannot reach `check_invariants`), and must
/// actually route reclamation through the epoch machinery.
#[test]
fn epoch_invariants_hold_after_churn() {
    let mut d: SortedListDict<u64, u64, Epoch> = SortedListDict::new();
    for k in 0..128 {
        d.insert(k, k);
    }
    for k in (0..128).step_by(2) {
        d.remove(&k);
    }
    d.check_invariants().unwrap();
    let stats = d.mem_stats();
    assert!(stats.epoch_pins > 0, "dict ops must pin");
    assert!(
        stats.epoch_retires >= 64,
        "removes must retire through limbo"
    );

    let mut r: ResizableHashDict<u64, u64, RandomState, Epoch> =
        ResizableHashDict::with_initial_buckets(2);
    for k in 0..128 {
        r.insert(k, k);
    }
    for k in (0..128).step_by(2) {
        r.remove(&k);
    }
    assert!(r.bucket_count() > 2, "table must have grown");
    r.check_invariants().unwrap();
}
