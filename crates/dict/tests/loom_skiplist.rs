//! Model-checked regression test for the skip-list orphan-tower race
//! (`--cfg loom` only).
//!
//! One thread inserts key 7 with a deterministic tower height of 2; a
//! second thread removes key 7. The pre-fix interleaving that orphans the
//! tower:
//!
//! 1. Inserter links key 7 at level 0 and enters the level-1 loop; its
//!    `back_link[0]` pre-check still reads null.
//! 2. Remover's top-down scan passes level 1 (sees nothing there — the
//!    level-1 link does not exist yet) and pauses before its level-0 scan.
//! 3. Inserter links level 1 and passes the post-link `back_link[0]`
//!    check — the level-0 delete has not happened, so it reads null and
//!    skips the self-undo.
//! 4. Remover deletes key 7 at level 0 and sets `back_link[0]`. It never
//!    revisits level 1, so the level-1 entry permanently references a key
//!    absent from level 0 — `check_invariants` reports
//!    "level 1 contains key missing from level 0".
//!
//! Only one preemption is needed (pause the remover between its level-1
//! and level-0 scans while the inserter runs to completion), but the
//! window is a handful of steps inside two multi-hundred-step threads, so
//! the DFS sweep would visit an enormous schedule prefix first. The test
//! uses the scheduler's seeded PCT-style random exploration instead; the
//! seed below found the race on the pre-fix code.
//!
//! Pre-fix failure evidence (reproducible at the revision before the
//! `sweep_orphan_tower` fix): `MODEL_SEED` below fails on explored
//! schedule 161 with "level 1 contains key missing from level 0". The
//! printed replay vector is exactly the narrative above — decision 0
//! chooses index 1 (remover first), one preemption at decision 246 hands
//! control to the inserter, every other decision stays at index 0:
//!
//! ```text
//! VALOIS_SCHED_REPLAY=1,0,...,0,1,0,...,0   # the second `1` is decision 246
//! ```
//!
//! (The vector is schedule-shape-dependent, so it replays only at the
//! pre-fix revision — the fix's fences and sweep change the decision
//! indices. The seeded exploration below is the durable regression net.)
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p valois-dict --test loom_skiplist`
#![cfg(loom)]

use std::sync::Arc;

use valois_core::ArenaConfig;
use valois_dict::{Dictionary, SkipListDict};
use valois_sync::shim::{thread, Builder};

/// Seed for the random-schedule exploration. On the pre-fix code this
/// exact configuration (seed, schedule count, preemption bound) hits the
/// orphan-tower interleaving; post-fix it must explore clean.
const MODEL_SEED: u64 = 0xB10C_7035;

/// Number of independent random schedules to explore per model. Large
/// enough that the pre-fix bug reproduces with margin (it first fails
/// well inside this budget), small enough for CI.
const MODEL_SCHEDULES: u64 = 400;

fn model_config() -> ArenaConfig {
    // MAX_LEVELS dummy towers + a few cells/aux nodes; the insert of a
    // height-2 tower needs 3 nodes.
    ArenaConfig::new().initial_capacity(48).max_nodes(48)
}

/// The insert-vs-remove race on a single key: on every explored schedule,
/// no upper level may retain a key that level 0 has lost, and the final
/// membership must agree with the remover's return value.
#[test]
fn concurrent_insert_remove_leaves_no_orphan_tower() {
    let explored = Builder::new()
        .preemption_bound(2)
        .random_walks(MODEL_SCHEDULES, MODEL_SEED)
        .check(|| {
            let dict: Arc<SkipListDict<u64, u64>> =
                Arc::new(SkipListDict::with_config(model_config()));

            let inserter = {
                let dict = Arc::clone(&dict);
                thread::spawn(move || {
                    // Height 2: the minimal tower with an upper level to
                    // orphan. `random_level` is uncontrollable under the
                    // model, hence the explicit-height hook.
                    assert!(dict.insert_with_height(7, 70, 2), "key is fresh");
                })
            };
            let remover = {
                let dict = Arc::clone(&dict);
                thread::spawn(move || dict.remove(&7))
            };
            inserter.join().unwrap();
            let removed = remover.join().unwrap();

            let mut dict = Arc::try_unwrap(dict).expect("all threads joined");
            if removed {
                assert_eq!(dict.find(&7), None, "removed key must be gone");
            } else {
                assert_eq!(dict.find(&7), Some(70), "unremoved key must stay");
            }
            dict.check_invariants()
                .expect("no level may hold a key absent from level 0");
        });
    assert!(explored > 1, "model must branch, explored {explored}");
}

/// Same race plus a reinsertion of the same key after both racers finish:
/// the remover's orphan sweep targets the deleted cell by pointer
/// identity, so a newer same-key tower must survive it untouched.
#[test]
fn orphan_sweep_spares_a_reinserted_tower() {
    let explored = Builder::new()
        .preemption_bound(2)
        .random_walks(MODEL_SCHEDULES / 2, MODEL_SEED ^ 0x5EED)
        .check(|| {
            let dict: Arc<SkipListDict<u64, u64>> =
                Arc::new(SkipListDict::with_config(model_config()));

            let inserter = {
                let dict = Arc::clone(&dict);
                thread::spawn(move || {
                    assert!(dict.insert_with_height(7, 70, 2), "key is fresh");
                })
            };
            let churner = {
                let dict = Arc::clone(&dict);
                thread::spawn(move || {
                    let removed = dict.remove(&7);
                    if removed {
                        // Rebuild a same-key tower while the first
                        // inserter may still be linking upper levels.
                        assert!(dict.insert_with_height(7, 71, 2), "slot is free");
                    }
                    removed
                })
            };
            inserter.join().unwrap();
            let removed = churner.join().unwrap();

            let mut dict = Arc::try_unwrap(dict).expect("all threads joined");
            let expect = if removed { Some(71) } else { Some(70) };
            assert_eq!(dict.find(&7), expect, "exactly one tower remains");
            dict.check_invariants()
                .expect("no level may hold a key absent from level 0");
        });
    assert!(explored > 1, "model must branch, explored {explored}");
}
