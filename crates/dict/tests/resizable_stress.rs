//! Resize-grade stress for [`ResizableHashDict`]: multithreaded churn
//! that drives the table across several doublings while finds, inserts,
//! and removes race the bucket splits, then the extended
//! `check_invariants()` walk (split order strictly increasing — i.e. no
//! duplicate logical key and no duplicate sentinel — every published
//! bucket shortcut reachable and pointing at its own sentinel) plus the
//! §5 refcount audit.
//!
//! The `smoke_` twin is Miri-sized (tiny arena, two threads, short
//! runs): CI's Miri job runs `cargo miri test -p valois-dict smoke_`.

use std::sync::atomic::{AtomicU64, Ordering};

use valois_core::ArenaConfig;
use valois_dict::{Dictionary, ResizableHashDict};
use valois_sync::rng::SmallRng;

/// Churns `keys`-sized key space with a 2:1:1 find/insert/remove mix and
/// verifies insert/remove accounting balances against `len()`.
fn churn(dict: &ResizableHashDict<u64, u64>, threads: u64, ops_per_thread: u64, keys: u64) {
    let len_before = dict.len() as i64;
    let inserted = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    std::thread::scope(|s| {
        let inserted = &inserted;
        let removed = &removed;
        for tid in 0..threads {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ tid);
                for _ in 0..ops_per_thread {
                    let x = rng.next_u64();
                    let key = (x >> 8) % keys;
                    match x & 3 {
                        0 | 1 => {
                            let _ = dict.contains(&key);
                        }
                        2 => {
                            if dict.insert(key, tid) {
                                inserted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if dict.remove(&key) {
                                removed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    // Signed: a round over a table filled by earlier rounds can remove
    // more than it inserts.
    let net = len_before + inserted.load(Ordering::Relaxed) as i64
        - removed.load(Ordering::Relaxed) as i64;
    assert_eq!(dict.len() as i64, net, "insert/remove accounting");
}

#[test]
fn churn_across_doublings_preserves_invariants() {
    let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
    churn(&d, 4, 20_000, 512);
    assert!(
        d.doublings() >= 3,
        "churn over 512 keys from 2 buckets must double >= 3 times, saw {} ({} buckets)",
        d.doublings(),
        d.bucket_count()
    );
    d.check_invariants().unwrap();
    d.audit_refcounts().unwrap();
}

#[test]
fn repeated_rounds_keep_growing_table_sound() {
    // The same table churned repeatedly: later rounds operate on a table
    // whose buckets were all lazily initialized under races in earlier
    // rounds, catching any corruption that only shows after growth.
    let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
    for round in 0..4 {
        churn(&d, 4, 5_000, 512);
        d.check_invariants()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        d.audit_refcounts()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    assert!(d.doublings() >= 3, "saw {} doublings", d.doublings());
}

/// Pass-through hasher: bucket placement == key bits, so every key's
/// bucket (and the whole parent-recursion chain of first touches) is
/// chosen by the test, not by `RandomState`.
#[derive(Clone, Default)]
struct IdentityBuild;

impl std::hash::BuildHasher for IdentityBuild {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

struct IdentityHasher(u64);

impl std::hash::Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        self.0 = u64::from_le_bytes(buf);
    }
}

#[test]
fn bucket_publication_races_lookup() {
    // Regression for the `bucket_cursor` miss path: a lookup whose
    // bucket root is not yet published must initialize it from the
    // parent bucket's root — recursively, racing any number of other
    // first-touchers — and never fall back to a head-of-list scan or
    // publish a second sentinel. 64 buckets, all unpublished except 0;
    // every key's first touch races 7 other threads walking the same
    // parent chains (bucket 63's chain is 63 -> 31 -> 15 -> 7 -> 3 ->
    // 1 -> 0, all cold at the barrier drop).
    for round in 0..8u64 {
        let mut d: ResizableHashDict<u64, u64, IdentityBuild> =
            ResizableHashDict::with_settings(64, IdentityBuild, ArenaConfig::default());
        let wins = AtomicU64::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            let (d, wins, barrier) = (&d, &wins, &barrier);
            for tid in 0..8u64 {
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..64u64 {
                        // Different traversal order per thread: even tids
                        // touch deep buckets first (publication), odd tids
                        // shallow first (lookup through cold parents).
                        let key = if tid % 2 == 0 { 63 - i } else { i };
                        let key = key.wrapping_add(round) % 64;
                        if tid < 4 {
                            if d.insert(key, tid) {
                                wins.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            let _ = d.contains(&key);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            64,
            "round {round}: each key inserted exactly once"
        );
        for key in 0..64 {
            assert!(d.contains(&key), "round {round}: key {key} lost");
        }
        d.check_invariants()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        d.audit_refcounts()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
}

#[test]
fn smoke_churn_with_resize_miri_sized() {
    // Miri-sized twin of `churn_across_doublings_preserves_invariants`:
    // two threads, a small key space still large enough to force at least
    // one doubling from 2 buckets (load factor 3 → >6 live items).
    let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_settings(
        2,
        std::hash::RandomState::new(),
        ArenaConfig::default().initial_capacity(64),
    );
    churn(&d, 2, 150, 32);
    // Make growth definite even if the random mix removed aggressively.
    for k in 0..24 {
        d.insert(1_000 + k, k);
    }
    assert!(d.doublings() >= 1, "saw {} doublings", d.doublings());
    d.check_invariants().unwrap();
    d.audit_refcounts().unwrap();
}
