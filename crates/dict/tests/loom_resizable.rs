//! Model-checked verification of the resizable hash table's lazy
//! bucket-initialization race (`--cfg loom` only), alongside the three
//! core protocol models in `valois-core`.
//!
//! Two threads insert keys that hash into the *same uninitialized
//! bucket* of a two-bucket table. Both race the whole initialization
//! protocol: recursing to the parent bucket, inserting the bucket's
//! sentinel into the split-ordered list (the Fig. 9 CAS decides the
//! winner; the loser's prepared sentinel is dropped), and publishing the
//! bucket shortcut with a `swing` from null (exactly one publication
//! wins; the loser's SafeRead count is released by the swing protocol —
//! no leak, no double-link). On every interleaving both items must be
//! present, the split order must contain exactly one sentinel for the
//! bucket, and the §5 refcounts must be exact.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p valois-dict --test loom_resizable`
#![cfg(loom)]

use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

use valois_core::ArenaConfig;
use valois_dict::{Dictionary, ResizableHashDict};
use valois_sync::shim::{thread, Builder};

/// Identity hash so the model controls bucket placement exactly.
#[derive(Clone, Default, Debug)]
struct IdentityBuild;

#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("model hashes u64 keys only");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl BuildHasher for IdentityBuild {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher::default()
    }
}

/// Model — two inserters race the lazy init of bucket 1.
///
/// Keys 1 and 3 both map to bucket 1 of a 2-bucket table (identity
/// hash), which only exists as an unpublished shortcut slot until the
/// first of them initializes it. The race covers both CAS sites: the
/// sentinel's list insertion and the shortcut's null -> sentinel swing.
#[test]
fn racing_bucket_inits_publish_one_sentinel() {
    let explored = Builder::new().preemption_bound(2).check(|| {
        let dict: Arc<ResizableHashDict<u64, u64, IdentityBuild>> =
            Arc::new(ResizableHashDict::with_settings(
                2,
                IdentityBuild,
                ArenaConfig::new().initial_capacity(16).max_nodes(16),
            ));

        let mut handles = Vec::new();
        for key in [1u64, 3] {
            let dict = Arc::clone(&dict);
            handles.push(thread::spawn(move || {
                assert!(dict.insert(key, key * 10), "disjoint keys always land");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let mut dict = Arc::try_unwrap(dict).expect("all threads joined");
        assert_eq!(dict.find(&1), Some(10));
        assert_eq!(dict.find(&3), Some(30));
        // Exactly one initializer won publication: buckets 0 and 1.
        assert_eq!(dict.initialized_buckets(), 2, "one shortcut per bucket");
        assert_eq!(dict.bucket_count(), 2, "2 items never trigger a doubling");
        // The strict split-order walk rejects a double-linked sentinel;
        // the refcount audit rejects a leaked loser count.
        dict.check_invariants().expect("split-order invariants");
        dict.audit_refcounts().expect("exact counts after the race");
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}
