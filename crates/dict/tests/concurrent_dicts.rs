//! Concurrent dictionary semantics, generic over every §4 implementation:
//! linearizable insert/remove accounting, uniqueness under insert races,
//! and quiescent structural invariants.

use std::sync::atomic::{AtomicU64, Ordering};

use valois_dict::{BstDict, Dictionary, HashDict, ResizableHashDict, SkipListDict, SortedListDict};

fn threads() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get().clamp(4, 8) as u64)
        .unwrap_or(4)
}

/// Each thread owns a disjoint key range: all inserts and removes must
/// succeed exactly once — any failure indicates a lost or duplicated
/// operation.
fn disjoint_ranges<D: Dictionary<u64, u64>>(dict: &D) {
    let t = threads();
    let per = 300u64;
    std::thread::scope(|s| {
        for tid in 0..t {
            s.spawn(move || {
                let base = tid * per;
                for k in base..base + per {
                    assert!(dict.insert(k, k + 1), "insert {k} must succeed");
                }
                for k in base..base + per {
                    assert_eq!(dict.find(&k), Some(k + 1), "find {k}");
                }
                for k in (base..base + per).step_by(2) {
                    assert!(dict.remove(&k), "remove {k} must succeed");
                }
            });
        }
    });
    assert_eq!(dict.len() as u64, t * per / 2);
    for k in 0..t * per {
        assert_eq!(dict.contains(&k), k % 2 == 1, "parity of {k}");
    }
}

/// All threads race to insert the same keys: exactly one winner per key.
fn insert_races<D: Dictionary<u64, u64>>(dict: &D) {
    let wins = AtomicU64::new(0);
    let keys = 100u64;
    std::thread::scope(|s| {
        let wins = &wins;
        for tid in 0..threads() {
            s.spawn(move || {
                for k in 0..keys {
                    if dict.insert(k, tid) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), keys, "one winner per key");
    assert_eq!(dict.len() as u64, keys);
    // Every stored value must be a coherent winner's value.
    for k in 0..keys {
        let v = dict.find(&k).expect("key present");
        assert!(v < threads());
    }
}

/// All threads race to remove the same keys: exactly one winner per key.
fn remove_races<D: Dictionary<u64, u64>>(dict: &D) {
    let keys = 100u64;
    for k in 0..keys {
        assert!(dict.insert(k, k));
    }
    let wins = AtomicU64::new(0);
    std::thread::scope(|s| {
        let wins = &wins;
        for _ in 0..threads() {
            s.spawn(move || {
                for k in 0..keys {
                    if dict.remove(&k) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), keys, "one remover per key");
    assert!(dict.is_empty());
}

/// Mixed churn against a small key space; net count must balance.
fn churn_conservation<D: Dictionary<u64, u64>>(dict: &D) {
    let inserted = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    std::thread::scope(|s| {
        let inserted = &inserted;
        let removed = &removed;
        for tid in 0..threads() {
            s.spawn(move || {
                let mut x = tid.wrapping_mul(0x9E37_79B9) | 1;
                for _ in 0..2_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % 64;
                    if x & 1 == 0 {
                        if dict.insert(key, tid) {
                            inserted.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if dict.remove(&key) {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let net = inserted.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed);
    assert_eq!(
        dict.len() as u64,
        net,
        "insert/remove accounting must balance"
    );
}

mod sorted_list {
    use super::*;

    #[test]
    fn disjoint_ranges_hold() {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        disjoint_ranges(&d);
    }

    #[test]
    fn insert_race_single_winner() {
        let mut d: SortedListDict<u64, u64> = SortedListDict::new();
        insert_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn remove_race_single_winner() {
        let mut d: SortedListDict<u64, u64> = SortedListDict::new();
        remove_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn churn_balances() {
        let mut d: SortedListDict<u64, u64> = SortedListDict::new();
        churn_conservation(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn retry_accounting_matches_analysis() {
        // §4.1: "each successfully completed operation can cause p−1
        // concurrent processes to have to retry". With p threads hammering
        // one hot key region, retries stay bounded by (ops × p).
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        let p = threads();
        let ops_per_thread = 500u64;
        std::thread::scope(|s| {
            let d = &d;
            for tid in 0..p {
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        let k = i % 8;
                        if (i + tid) % 2 == 0 {
                            d.insert(k, tid);
                        } else {
                            d.remove(&k);
                        }
                    }
                });
            }
        });
        let stats = d.list_stats();
        let total_ops = p * ops_per_thread;
        let retries = stats.insert_retries() + stats.delete_retries();
        assert!(
            retries <= total_ops * p,
            "amortized bound: {retries} retries for {total_ops} ops at p={p}"
        );
    }
}

mod hash {
    use super::*;

    #[test]
    fn disjoint_ranges_hold() {
        let d: HashDict<u64, u64> = HashDict::with_buckets(32);
        disjoint_ranges(&d);
    }

    #[test]
    fn insert_race_single_winner() {
        let mut d: HashDict<u64, u64> = HashDict::with_buckets(16);
        insert_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn remove_race_single_winner() {
        let mut d: HashDict<u64, u64> = HashDict::with_buckets(16);
        remove_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn churn_balances() {
        let mut d: HashDict<u64, u64> = HashDict::with_buckets(8);
        churn_conservation(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn more_buckets_fewer_retries() {
        // §4.1's hash-table claim in miniature: spreading a contended
        // workload over many buckets reduces retries vs one bucket.
        let run = |buckets: usize| -> u64 {
            let d: HashDict<u64, u64> = HashDict::with_buckets(buckets);
            std::thread::scope(|s| {
                let d = &d;
                for tid in 0..threads() {
                    s.spawn(move || {
                        for i in 0..1_000u64 {
                            let k = i % 32;
                            if (i + tid) % 2 == 0 {
                                d.insert(k, tid);
                            } else {
                                d.remove(&k);
                            }
                        }
                    });
                }
            });
            d.total_retries()
        };
        let single = run(1);
        let many = run(64);
        // Not a hard guarantee per run, but overwhelmingly true; allow
        // equality for fast machines where contention is negligible.
        assert!(
            many <= single.max(1) * 2,
            "bucketing should not increase contention: 1 bucket {single} vs 64 buckets {many}"
        );
    }
}

mod resizable {
    use super::*;

    #[test]
    fn disjoint_ranges_hold() {
        // Start tiny so the disjoint-range fill drives several doublings
        // while the per-thread asserts race the bucket splits.
        let d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        disjoint_ranges(&d);
        assert!(
            d.doublings() >= 3,
            "fill must resize: {} buckets",
            d.bucket_count()
        );
    }

    #[test]
    fn insert_race_single_winner() {
        let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        insert_races(&d);
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }

    #[test]
    fn remove_race_single_winner() {
        let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        remove_races(&d);
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }

    #[test]
    fn churn_balances() {
        let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        churn_conservation(&d);
        d.check_invariants().unwrap();
        d.audit_refcounts().unwrap();
    }
}

mod skiplist {
    use super::*;

    #[test]
    fn disjoint_ranges_hold() {
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        disjoint_ranges(&d);
    }

    #[test]
    fn insert_race_single_winner() {
        let mut d: SkipListDict<u64, u64> = SkipListDict::new();
        insert_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn remove_race_single_winner() {
        let mut d: SkipListDict<u64, u64> = SkipListDict::new();
        remove_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn churn_balances() {
        let mut d: SkipListDict<u64, u64> = SkipListDict::new();
        churn_conservation(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn single_key_insert_remove_hammer_leaves_no_orphans() {
        // The hardest skip-list race: one key inserted and removed
        // concurrently. A remover passing level L before the inserter
        // links L would orphan the tower there. Two mechanisms prevent
        // any orphan surviving quiescence (check_invariants verifies the
        // level subset property): the inserter's fenced back_link[0]
        // check + self-undo, and the remover's post-delete
        // sweep_orphan_tower — see docs/PROTOCOL.md, "The orphan-tower
        // race", and the deterministic loom_skiplist model that pins the
        // interleaving this hammer used to lose to.
        //
        // VALOIS_HAMMER_ROUNDS overrides the round count (the nightly CI
        // job runs 500 consecutive rounds); with the `trace` feature on,
        // a failure dumps a merged .vtrace post-mortem for the artifact
        // upload.
        valois_trace::arm_panic_dump();
        let rounds: u64 = std::env::var("VALOIS_HAMMER_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        for round in 0..rounds {
            let mut d: SkipListDict<u64, u64> = SkipListDict::new();
            std::thread::scope(|s| {
                let d = &d;
                for t in 0..2u64 {
                    s.spawn(move || {
                        for i in 0..200u64 {
                            if (i + t) % 2 == 0 {
                                d.insert(7, i);
                            } else {
                                d.remove(&7);
                            }
                        }
                    });
                }
            });
            d.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            // Make the final state definite and re-verify.
            d.remove(&7);
            assert_eq!(d.find(&7), None);
            assert!(d.insert(7, 1), "key must be insertable after the storm");
            assert_eq!(d.find(&7), Some(1));
            d.check_invariants().unwrap();
        }
    }

    #[test]
    fn concurrent_readers_during_churn() {
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        for k in 0..256 {
            d.insert(k * 2, k);
        }
        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            let d = &d;
            let stop = &stop;
            for tid in 0..2u64 {
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (i * 7 + tid * 3) % 512;
                        if i % 2 == 0 {
                            d.insert(k, i);
                        } else {
                            d.remove(&k);
                        }
                    }
                    stop.fetch_add(1, Ordering::Release);
                });
            }
            for _ in 0..3 {
                s.spawn(move || {
                    while stop.load(Ordering::Acquire) < 2 {
                        for k in (0..512).step_by(17) {
                            // Must never crash or hang; result is free to
                            // be either under concurrency.
                            let _ = d.contains(&k);
                        }
                    }
                });
            }
        });
    }
}

mod bst {
    use super::*;

    #[test]
    fn disjoint_ranges_hold() {
        let d: BstDict<u64, u64> = BstDict::new();
        disjoint_ranges(&d);
    }

    #[test]
    fn insert_race_single_winner() {
        let mut d: BstDict<u64, u64> = BstDict::new();
        insert_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn remove_race_single_winner() {
        let mut d: BstDict<u64, u64> = BstDict::new();
        remove_races(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn churn_balances() {
        let mut d: BstDict<u64, u64> = BstDict::new();
        churn_conservation(&d);
        d.check_invariants().unwrap();
    }

    #[test]
    fn single_key_hammer_with_neighbours() {
        // Deleting an internal key between live neighbours exercises all
        // three BST deletion cases (leaf, one-child, Fig. 14 two-child)
        // under contention; in-order must stay exact.
        for round in 0..30 {
            let mut d: BstDict<u64, u64> = BstDict::new();
            d.insert(10, 0);
            d.insert(5, 0);
            d.insert(15, 0);
            std::thread::scope(|s| {
                let d = &d;
                for t in 0..2u64 {
                    s.spawn(move || {
                        for i in 0..200u64 {
                            if (i + t) % 2 == 0 {
                                d.insert(10, i);
                            } else {
                                d.remove(&10);
                            }
                        }
                    });
                }
            });
            d.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert!(d.contains(&5) && d.contains(&15), "neighbours intact");
            d.remove(&10);
            assert!(d.insert(10, 1));
            assert_eq!(d.find(&10), Some(1));
            d.check_invariants().unwrap();
        }
    }

    #[test]
    fn concurrent_readers_during_churn() {
        let d: BstDict<u64, u64> = BstDict::new();
        for k in 0..256u64 {
            d.insert(k * 2, k);
        }
        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            let d = &d;
            let stop = &stop;
            for tid in 0..2u64 {
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (i * 7 + tid * 3) % 512;
                        if i % 2 == 0 {
                            d.insert(k, i);
                        } else {
                            d.remove(&k);
                        }
                    }
                    stop.fetch_add(1, Ordering::Release);
                });
            }
            for _ in 0..3 {
                s.spawn(move || {
                    while stop.load(Ordering::Acquire) < 2 {
                        for k in (0..512).step_by(17) {
                            let _ = d.contains(&k);
                        }
                    }
                });
            }
        });
    }
}
