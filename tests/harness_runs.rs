//! End-to-end harness runs through the facade: throughput measurement with
//! delay injection and latency recording against every dictionary kind —
//! the machinery behind experiments E1/E2/E9, exercised as a test.

use std::time::Duration;

use valois::baseline::{CriticalDelay, LockedListDict};
use valois::harness::{run_throughput, RunConfig, WorkloadSpec};
use valois::{BstDict, HashDict, SkipListDict, SortedListDict};

fn quick(threads: usize) -> RunConfig {
    RunConfig {
        threads,
        duration: Duration::from_millis(40),
        workload: WorkloadSpec::standard(64),
        op_delay: None,
        measure_latency: true,
    }
}

#[test]
fn runner_works_for_every_dictionary_kind() {
    let sorted: SortedListDict<u64, u64> = SortedListDict::new();
    let hash: HashDict<u64, u64> = HashDict::with_buckets(16);
    let skip: SkipListDict<u64, u64> = SkipListDict::new();
    let bst: BstDict<u64, u64> = BstDict::new();
    for (name, res) in [
        ("sorted", run_throughput(&sorted, &quick(2))),
        ("hash", run_throughput(&hash, &quick(2))),
        ("skip", run_throughput(&skip, &quick(2))),
        ("bst", run_throughput(&bst, &quick(2))),
    ] {
        assert!(res.total_ops > 0, "{name}: no operations completed");
        let lat = res.latency.expect("latency requested");
        assert!(lat.samples > 0, "{name}: no latency samples");
        assert!(lat.p50 <= lat.p999, "{name}: quantiles out of order: {lat}");
    }
}

#[test]
fn op_delay_slows_lockfree_but_preserves_correctness() {
    let dict: SortedListDict<u64, u64> = SortedListDict::new();
    let base = run_throughput(&dict, &quick(2));
    let dict2: SortedListDict<u64, u64> = SortedListDict::new();
    let mut stalled_cfg = quick(2);
    stalled_cfg.op_delay = Some(CriticalDelay::new(0.05, Duration::from_micros(200)));
    let stalled = run_throughput(&dict2, &stalled_cfg);
    assert!(stalled.total_ops > 0);
    // Stalls cost throughput but not much more than their duty cycle; on a
    // loaded CI box we only assert the runs completed coherently.
    assert_eq!(
        stalled.total_ops,
        stalled.finds + stalled.insert_hits + stalled.delete_hits
    );
    assert!(base.total_ops > 0);
}

#[test]
fn critical_delay_inside_lock_convoys_everyone() {
    // The E2 asymmetry as a test: with identical stalls, the locked list
    // loses much more throughput than the lock-free list because its
    // stalls happen while holding the lock.
    let stall = CriticalDelay::new(0.05, Duration::from_micros(500));

    let lf: SortedListDict<u64, u64> = SortedListDict::new();
    let mut lf_cfg = quick(4);
    lf_cfg.op_delay = Some(stall.clone());
    let lf_res = run_throughput(&lf, &lf_cfg);

    let locked: LockedListDict<u64, u64> = LockedListDict::new().with_delay(stall);
    let locked_res = run_throughput(&locked, &quick(4));

    // Both make progress (non-blocking vs merely slow).
    assert!(lf_res.total_ops > 0);
    assert!(locked_res.total_ops > 0);
    // The locked list's *tail* shows the convoy: its p999 must reach the
    // stall magnitude, because victims queue behind a sleeping holder.
    let locked_lat = locked_res.latency.expect("latency requested");
    assert!(
        locked_lat.p999 >= Duration::from_micros(400),
        "expected convoy tail behind the lock, got {locked_lat}"
    );
}
