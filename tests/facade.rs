//! Cross-crate integration through the `valois` facade: the public API a
//! downstream user sees, exercised end to end.

use valois::{ArenaConfig, BstDict, Dictionary, HashDict, List, SkipListDict, SortedListDict};

#[test]
fn facade_reexports_are_usable() {
    let list: List<u32> = List::new();
    let mut cur = list.cursor();
    cur.insert(1).unwrap();
    assert_eq!(list.len(), 1);

    let d1: SortedListDict<u32, u32> = SortedListDict::new();
    let d2: HashDict<u32, u32> = HashDict::with_buckets(8);
    let d3: SkipListDict<u32, u32> = SkipListDict::new();
    let d4: BstDict<u32, u32> = BstDict::new();
    for d in [
        &d1 as &dyn Dictionary<u32, u32>,
        &d2 as &dyn Dictionary<u32, u32>,
        &d3 as &dyn Dictionary<u32, u32>,
        &d4 as &dyn Dictionary<u32, u32>,
    ] {
        assert!(d.insert(1, 10));
        assert!(!d.insert(1, 20));
        assert_eq!(d.find(&1), Some(10));
        assert!(d.remove(&1));
        assert!(d.is_empty());
    }
}

#[test]
fn sync_primitives_reachable() {
    use valois::{Backoff, Lock, LockKind, TasLock};
    let lock = TasLock::new();
    lock.acquire();
    lock.release();
    let mut b = Backoff::new();
    b.spin();
    for k in LockKind::ALL {
        let l = k.build();
        l.acquire();
        l.release();
    }
}

#[test]
fn every_dictionary_agrees_with_a_model_under_one_workload() {
    // One mixed workload applied to all four §4 dictionaries and a model;
    // any divergence is a cross-implementation semantic bug.
    use std::collections::BTreeMap;
    let sorted: SortedListDict<u64, u64> = SortedListDict::new();
    let hash: HashDict<u64, u64> = HashDict::with_buckets(16);
    let skip: SkipListDict<u64, u64> = SkipListDict::new();
    let bst: BstDict<u64, u64> = BstDict::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    let mut x = 0xDEADBEEFu64;
    for _ in 0..3_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 96;
        if x & 0b100 == 0 {
            let expect = !model.contains_key(&k);
            if expect {
                model.insert(k, k);
            }
            assert_eq!(sorted.insert(k, k), expect, "sorted insert {k}");
            assert_eq!(hash.insert(k, k), expect, "hash insert {k}");
            assert_eq!(skip.insert(k, k), expect, "skip insert {k}");
            assert_eq!(bst.insert(k, k), expect, "bst insert {k}");
        } else if x & 0b1000 == 0 {
            let expect = model.remove(&k).is_some();
            assert_eq!(sorted.remove(&k), expect, "sorted remove {k}");
            assert_eq!(hash.remove(&k), expect, "hash remove {k}");
            assert_eq!(skip.remove(&k), expect, "skip remove {k}");
            assert_eq!(bst.remove(&k), expect, "bst remove {k}");
        } else {
            let expect = model.get(&k).copied();
            assert_eq!(sorted.find(&k), expect, "sorted find {k}");
            assert_eq!(hash.find(&k), expect, "hash find {k}");
            assert_eq!(skip.find(&k), expect, "skip find {k}");
            assert_eq!(bst.find(&k), expect, "bst find {k}");
        }
    }
    assert_eq!(sorted.len(), model.len());
    assert_eq!(hash.len(), model.len());
    assert_eq!(skip.len(), model.len());
    assert_eq!(bst.len(), model.len());
}

#[test]
fn capped_arena_config_flows_through() {
    let d: SortedListDict<u64, u64> =
        SortedListDict::with_config(ArenaConfig::new().initial_capacity(16).max_nodes(16));
    // 3 structural nodes + 2 per item → 6 items fit.
    let mut inserted = 0;
    for k in 0..10 {
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.insert(k, k))).is_ok() {
            inserted += 1;
        } else {
            break;
        }
    }
    assert!((5..=7).contains(&inserted), "inserted={inserted}");
}

#[test]
fn readme_architecture_claim_nonblocking_under_stall() {
    // A thread parked mid-operation must not prevent others from finishing
    // (the non-blocking property, §2.1) — smoke version of experiment E2.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;
    let dict: SortedListDict<u64, u64> = SortedListDict::new();
    for k in 0..32 {
        dict.insert(k * 2, k);
    }
    let barrier = Barrier::new(2);
    let stalled = AtomicBool::new(false);
    std::thread::scope(|s| {
        let dict = &dict;
        let barrier = &barrier;
        let stalled = &stalled;
        // Thread A: opens a cursor *mid-list* (holding counted references)
        // and parks for a long time.
        s.spawn(move || {
            let mut cur = dict.as_list().cursor();
            cur.next();
            cur.next();
            barrier.wait();
            while !stalled.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            drop(cur);
        });
        // Thread B: completes hundreds of operations while A is parked.
        barrier.wait();
        for k in 0..200u64 {
            assert!(dict.insert(1_000 + k, k));
            assert!(dict.remove(&(1_000 + k)));
        }
        stalled.store(true, Ordering::Release);
    });
    assert_eq!(dict.len(), 32);
}
