//! §2.1 requires linearizability. These tests record genuine concurrent
//! histories against every §4 dictionary and verify each has a witness
//! ordering (exhaustive Wing–Gong search).

use valois::harness::{check_linearizable, History, Op};
use valois::{BstDict, Dictionary, HashDict, SkipListDict, SortedListDict};

fn contended_plans() -> Vec<Vec<Op>> {
    // Three threads fighting over three keys: inserts, removes and finds
    // all overlap.
    vec![
        vec![Op::Insert(1), Op::Remove(2), Op::Find(3), Op::Insert(2)],
        vec![Op::Insert(2), Op::Find(1), Op::Remove(1), Op::Find(2)],
        vec![Op::Insert(3), Op::Remove(3), Op::Insert(1), Op::Find(1)],
    ]
}

fn duel_plans() -> Vec<Vec<Op>> {
    // Two threads performing identical sequences: every op races its twin.
    let seq = vec![
        Op::Insert(7),
        Op::Remove(7),
        Op::Insert(7),
        Op::Find(7),
        Op::Remove(7),
    ];
    vec![seq.clone(), seq]
}

fn assert_linearizable_over_rounds<D: Dictionary<u64, u64>>(
    dict: &D,
    plans: &[Vec<Op>],
    rounds: usize,
) {
    for round in 0..rounds {
        let history = History::record(dict, plans);
        assert!(
            check_linearizable(&history),
            "round {round}: non-linearizable history:\n{history}"
        );
        // Reset any leftover keys for the next round.
        for k in 0..16 {
            let _ = dict.remove(&k);
        }
    }
}

#[test]
fn sorted_list_histories_linearizable() {
    let d: SortedListDict<u64, u64> = SortedListDict::new();
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn hash_histories_linearizable() {
    let d: HashDict<u64, u64> = HashDict::with_buckets(4);
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn skiplist_histories_linearizable() {
    let d: SkipListDict<u64, u64> = SkipListDict::new();
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn bst_histories_linearizable() {
    let d: BstDict<u64, u64> = BstDict::new();
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn randomized_plans_all_linearizable() {
    // Fuzz: random 3-thread plans over 4 keys, checked exhaustively.
    use valois::sync::rng::SmallRng;
    let mut rng = SmallRng::seed_from_u64(0x11AE_A810u64);
    type Fixture = (
        SortedListDict<u64, u64>,
        HashDict<u64, u64>,
        SkipListDict<u64, u64>,
        BstDict<u64, u64>,
    );
    let dicts: Fixture = (
        SortedListDict::new(),
        HashDict::with_buckets(2),
        SkipListDict::new(),
        BstDict::new(),
    );
    for round in 0..60 {
        let plans: Vec<Vec<Op>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        let k = rng.gen_range(0..4u64);
                        match rng.gen_range(0..3u8) {
                            0 => Op::Insert(k),
                            1 => Op::Remove(k),
                            _ => Op::Find(k),
                        }
                    })
                    .collect()
            })
            .collect();
        macro_rules! check {
            ($d:expr, $name:expr) => {{
                let h = History::record($d, &plans);
                assert!(
                    check_linearizable(&h),
                    "round {round} ({}): non-linearizable:
{h}",
                    $name
                );
                for k in 0..8 {
                    let _ = $d.remove(&k);
                }
            }};
        }
        check!(&dicts.0, "sorted");
        check!(&dicts.1, "hash");
        check!(&dicts.2, "skip");
        check!(&dicts.3, "bst");
    }
}

mod seeded {
    //! Hand-built histories with a known verdict: the checker must reject
    //! each seeded violation and accept each legal overlap. These pin the
    //! checker itself — a bug that made it vacuously accept everything
    //! would silently defang every test above.

    use valois::harness::{check_linearizable, History, Op, Recorded};

    fn rec(thread: usize, op: Op, result: bool, start: u64, end: u64) -> Recorded {
        Recorded {
            thread,
            op,
            result,
            start,
            end,
        }
    }

    fn history(ops: Vec<Recorded>) -> History {
        History { ops }
    }

    #[test]
    fn stale_find_after_completed_insert_is_rejected() {
        // Insert(9) completes before Find(9) starts, nothing removes 9,
        // yet the find reports absent: no witness ordering exists.
        let h = history(vec![
            rec(0, Op::Insert(9), true, 0, 1),
            rec(1, Op::Find(9), false, 2, 3),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn successful_remove_without_insert_is_rejected() {
        let h = history(vec![rec(0, Op::Remove(3), true, 0, 1)]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn lost_update_is_rejected() {
        // Both inserts succeed, both strictly precede a find that reports
        // absent with no remove anywhere: doubly impossible.
        let h = history(vec![
            rec(0, Op::Insert(1), true, 0, 1),
            rec(1, Op::Insert(1), true, 2, 3),
            rec(0, Op::Find(1), false, 4, 5),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn overlapping_duplicate_inserts_with_one_winner_are_accepted() {
        // The legal version of `naive_list_would_fail_here`: the racing
        // inserts overlap and exactly one reports success.
        let h = history(vec![
            rec(0, Op::Insert(5), true, 0, 3),
            rec(1, Op::Insert(5), false, 1, 4),
        ]);
        assert!(check_linearizable(&h));
    }

    #[test]
    fn find_overlapping_insert_may_see_either_state() {
        // A find contained inside an insert's interval may linearize on
        // either side of it: both outcomes must be accepted.
        for find_result in [false, true] {
            let h = history(vec![
                rec(0, Op::Insert(2), true, 0, 3),
                rec(1, Op::Find(2), find_result, 1, 2),
            ]);
            assert!(
                check_linearizable(&h),
                "find={find_result} must have a witness:\n{h}"
            );
        }
    }

    #[test]
    fn insert_remove_insert_chain_is_accepted() {
        // Sequential chain across threads exercising state transitions.
        let h = history(vec![
            rec(0, Op::Insert(4), true, 0, 1),
            rec(1, Op::Remove(4), true, 2, 3),
            rec(0, Op::Insert(4), true, 4, 5),
            rec(1, Op::Find(4), true, 6, 7),
        ]);
        assert!(check_linearizable(&h));
    }
}

#[test]
fn naive_list_would_fail_here() {
    // Sanity check that the checker *can* reject: a hand-built history
    // with two successful inserts of one key has no witness.
    use valois::harness::Recorded;
    let bad = History {
        ops: vec![
            Recorded {
                thread: 0,
                op: Op::Insert(5),
                result: true,
                start: 0,
                end: 3,
            },
            Recorded {
                thread: 1,
                op: Op::Insert(5),
                result: true,
                start: 1,
                end: 4,
            },
        ],
    };
    assert!(!check_linearizable(&bad));
}
