//! §2.1 requires linearizability. These tests record genuine concurrent
//! histories against every §4 dictionary and verify each has a witness
//! ordering (exhaustive Wing–Gong search).

use valois::harness::{check_linearizable, History, Op};
use valois::{BstDict, Dictionary, HashDict, ResizableHashDict, SkipListDict, SortedListDict};

fn contended_plans() -> Vec<Vec<Op>> {
    // Three threads fighting over three keys: inserts, removes and finds
    // all overlap.
    vec![
        vec![Op::Insert(1), Op::Remove(2), Op::Find(3), Op::Insert(2)],
        vec![Op::Insert(2), Op::Find(1), Op::Remove(1), Op::Find(2)],
        vec![Op::Insert(3), Op::Remove(3), Op::Insert(1), Op::Find(1)],
    ]
}

fn duel_plans() -> Vec<Vec<Op>> {
    // Two threads performing identical sequences: every op races its twin.
    let seq = vec![
        Op::Insert(7),
        Op::Remove(7),
        Op::Insert(7),
        Op::Find(7),
        Op::Remove(7),
    ];
    vec![seq.clone(), seq]
}

fn assert_linearizable_over_rounds<D: Dictionary<u64, u64>>(
    dict: &D,
    plans: &[Vec<Op>],
    rounds: usize,
) {
    for round in 0..rounds {
        let history = History::record(dict, plans);
        assert!(
            check_linearizable(&history),
            "round {round}: non-linearizable history:\n{history}"
        );
        // Reset any leftover keys for the next round.
        for k in 0..16 {
            let _ = dict.remove(&k);
        }
    }
}

#[test]
fn sorted_list_histories_linearizable() {
    let d: SortedListDict<u64, u64> = SortedListDict::new();
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn hash_histories_linearizable() {
    let d: HashDict<u64, u64> = HashDict::with_buckets(4);
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn skiplist_histories_linearizable() {
    let d: SkipListDict<u64, u64> = SkipListDict::new();
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn bst_histories_linearizable() {
    let d: BstDict<u64, u64> = BstDict::new();
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn resizable_histories_linearizable() {
    let d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
    assert_linearizable_over_rounds(&d, &contended_plans(), 100);
    assert_linearizable_over_rounds(&d, &duel_plans(), 100);
}

#[test]
fn resizable_histories_span_resize_boundary() {
    // Ops racing the doubling itself: each round starts a fresh 2-bucket
    // table prefilled to exactly the load-factor threshold (2 buckets x
    // load factor 3 = 6 items), so the plans' very first successful
    // insert publishes the doubling and every subsequent op runs against
    // freshly-splitting buckets. The recorded history must still have a
    // linearization witness.
    for round in 0..100 {
        let d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        for k in 100..106u64 {
            assert!(d.insert(k, k));
        }
        assert_eq!(d.doublings(), 0, "round {round}: prefill must not resize");
        // Plan keys are disjoint from the prefill (the checker's model
        // starts empty, so plans may only touch keys it can account for).
        let plans = vec![
            vec![Op::Insert(1), Op::Find(2), Op::Insert(2), Op::Remove(1)],
            vec![Op::Insert(3), Op::Remove(2), Op::Find(3), Op::Insert(4)],
            vec![Op::Find(1), Op::Insert(5), Op::Remove(3), Op::Find(5)],
        ];
        let history = History::record(&d, &plans);
        assert!(
            check_linearizable(&history),
            "round {round}: non-linearizable across resize:\n{history}"
        );
        assert!(
            d.doublings() >= 1,
            "round {round}: the history must cross a doubling"
        );
    }
}

#[test]
fn cached_sorted_list_histories_with_midlist_resume_linearizable() {
    // The PR 7 retry machinery under the checker: cached cursors stay
    // anchored mid-list past a cold prefix the plans never touch, so
    // every recorded op positions via `Cursor::resume` from a mid-list
    // anchor (and every failed CAS retries the same way, never from
    // head). The histories must linearize exactly as the uncached
    // dict's do.
    use valois::ArenaConfig;
    let d: SortedListDict<u64, u64> =
        SortedListDict::with_config_cached(ArenaConfig::default(), true);
    for k in 0..64u64 {
        assert!(d.insert(2 * k, k));
    }
    // Hot keys ordered strictly after the prefix, so the cached anchors
    // (key < hot key) are reusable and the resume path actually engages.
    let plans = vec![
        vec![
            Op::Insert(201),
            Op::Remove(202),
            Op::Find(203),
            Op::Insert(202),
        ],
        vec![
            Op::Insert(202),
            Op::Find(201),
            Op::Remove(201),
            Op::Find(202),
        ],
        vec![
            Op::Insert(203),
            Op::Remove(203),
            Op::Insert(201),
            Op::Find(201),
        ],
    ];
    for round in 0..100 {
        let history = History::record(&d, &plans);
        assert!(
            check_linearizable(&history),
            "round {round}: non-linearizable with cached mid-list resume:\n{history}"
        );
        for k in 200..208u64 {
            let _ = d.remove(&k);
        }
    }
    // The hot window never disturbed the prefix.
    assert_eq!(d.keys().iter().filter(|k| **k < 200).count(), 64);
}

#[test]
fn randomized_plans_all_linearizable() {
    // Fuzz: random 3-thread plans over 4 keys, checked exhaustively.
    use valois::sync::rng::SmallRng;
    let mut rng = SmallRng::seed_from_u64(0x11AE_A810u64);
    type Fixture = (
        SortedListDict<u64, u64>,
        HashDict<u64, u64>,
        SkipListDict<u64, u64>,
        BstDict<u64, u64>,
        ResizableHashDict<u64, u64>,
    );
    let dicts: Fixture = (
        SortedListDict::new(),
        HashDict::with_buckets(2),
        SkipListDict::new(),
        BstDict::new(),
        ResizableHashDict::with_initial_buckets(2),
    );
    for round in 0..60 {
        let plans: Vec<Vec<Op>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        let k = rng.gen_range(0..4u64);
                        match rng.gen_range(0..3u8) {
                            0 => Op::Insert(k),
                            1 => Op::Remove(k),
                            _ => Op::Find(k),
                        }
                    })
                    .collect()
            })
            .collect();
        macro_rules! check {
            ($d:expr, $name:expr) => {{
                let h = History::record($d, &plans);
                assert!(
                    check_linearizable(&h),
                    "round {round} ({}): non-linearizable:
{h}",
                    $name
                );
                for k in 0..8 {
                    let _ = $d.remove(&k);
                }
            }};
        }
        check!(&dicts.0, "sorted");
        check!(&dicts.1, "hash");
        check!(&dicts.2, "skip");
        check!(&dicts.3, "bst");
        check!(&dicts.4, "resizable");
    }
}

mod seeded {
    //! Hand-built histories with a known verdict: the checker must reject
    //! each seeded violation and accept each legal overlap. These pin the
    //! checker itself — a bug that made it vacuously accept everything
    //! would silently defang every test above.

    use valois::harness::{check_linearizable, History, Op, Recorded};

    fn rec(thread: usize, op: Op, result: bool, start: u64, end: u64) -> Recorded {
        Recorded {
            thread,
            op,
            result,
            start,
            end,
        }
    }

    fn history(ops: Vec<Recorded>) -> History {
        History { ops }
    }

    #[test]
    fn stale_find_after_completed_insert_is_rejected() {
        // Insert(9) completes before Find(9) starts, nothing removes 9,
        // yet the find reports absent: no witness ordering exists.
        let h = history(vec![
            rec(0, Op::Insert(9), true, 0, 1),
            rec(1, Op::Find(9), false, 2, 3),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn successful_remove_without_insert_is_rejected() {
        let h = history(vec![rec(0, Op::Remove(3), true, 0, 1)]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn lost_update_is_rejected() {
        // Both inserts succeed, both strictly precede a find that reports
        // absent with no remove anywhere: doubly impossible.
        let h = history(vec![
            rec(0, Op::Insert(1), true, 0, 1),
            rec(1, Op::Insert(1), true, 2, 3),
            rec(0, Op::Find(1), false, 4, 5),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn overlapping_duplicate_inserts_with_one_winner_are_accepted() {
        // The legal version of `naive_list_would_fail_here`: the racing
        // inserts overlap and exactly one reports success.
        let h = history(vec![
            rec(0, Op::Insert(5), true, 0, 3),
            rec(1, Op::Insert(5), false, 1, 4),
        ]);
        assert!(check_linearizable(&h));
    }

    #[test]
    fn find_overlapping_insert_may_see_either_state() {
        // A find contained inside an insert's interval may linearize on
        // either side of it: both outcomes must be accepted.
        for find_result in [false, true] {
            let h = history(vec![
                rec(0, Op::Insert(2), true, 0, 3),
                rec(1, Op::Find(2), find_result, 1, 2),
            ]);
            assert!(
                check_linearizable(&h),
                "find={find_result} must have a witness:\n{h}"
            );
        }
    }

    #[test]
    fn item_lost_by_bucket_split_is_rejected() {
        // The signature history of a broken split: item 8 is inserted and
        // completes, a later insert (the growth trigger) completes, and a
        // reader arriving through the freshly-split bucket then reports 8
        // absent. No remove exists, so no witness ordering does either —
        // the checker must reject what a split that dropped items between
        // sentinel and successor would produce.
        let h = history(vec![
            rec(0, Op::Insert(8), true, 0, 1),
            rec(1, Op::Insert(16), true, 2, 3),
            rec(2, Op::Find(8), false, 4, 5),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn duplicate_key_across_split_is_rejected() {
        // A split that re-linked an item under the new sentinel while
        // leaving the original reachable would let two non-overlapping
        // inserts of one key both succeed. Strictly sequential here, so —
        // unlike the legal overlapping race above — rejection is forced.
        let h = history(vec![
            rec(0, Op::Insert(5), true, 0, 1),
            rec(1, Op::Insert(5), true, 2, 3),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn ops_straddling_the_split_era_are_accepted() {
        // The legal shape of ops racing a doubling: a find nested inside
        // the racing insert's interval sees it (linearizes after it), the
        // remove lands once the insert is done, and a late reader through
        // the finer bucket sees absence. A witness ordering exists.
        let h = history(vec![
            rec(0, Op::Insert(8), true, 0, 3),
            rec(1, Op::Find(8), true, 1, 2),
            rec(1, Op::Remove(8), true, 4, 5),
            rec(2, Op::Find(8), false, 6, 7),
        ]);
        assert!(check_linearizable(&h));
    }

    #[test]
    fn resume_overshoot_that_skips_a_present_key_is_rejected() {
        // I10's first corollary (docs/PROTOCOL.md): a resumed cursor
        // lands at-or-before the conflict, never later. A resume that
        // overshot past key 6 would report it absent even though its
        // insert completed and nothing removed it — the checker must
        // reject the history such a bug would record.
        let h = history(vec![
            rec(0, Op::Insert(4), true, 0, 1),
            rec(0, Op::Insert(6), true, 2, 3),
            // Thread 1's remove retried via a back_link resume...
            rec(1, Op::Remove(4), true, 4, 5),
            // ...and its next op, positioned from the resumed anchor,
            // skipped the continuously-present 6.
            rec(1, Op::Find(6), false, 6, 7),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn stale_cached_anchor_resurrecting_a_removed_key_is_rejected() {
        // A cached cursor reopened on a dead anchor *without*
        // revalidating (no `resume`) could read the anchor's frozen
        // successor: a find reporting 9 present after its remove
        // completed. No witness ordering exists.
        let h = history(vec![
            rec(0, Op::Insert(9), true, 0, 1),
            rec(1, Op::Remove(9), true, 2, 3),
            rec(0, Op::Find(9), true, 4, 5),
        ]);
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn retried_remove_spanning_a_racing_insert_is_accepted() {
        // The legal shape of a mid-list retry: the remove's interval
        // spans its failed CAS and back_link resume, overlapping the
        // insert it ultimately unlinks. A witness exists (insert, then
        // remove, then the late find sees absence).
        let h = history(vec![
            rec(0, Op::Insert(2), true, 1, 4),
            rec(1, Op::Remove(2), true, 0, 5),
            rec(2, Op::Find(2), false, 6, 7),
        ]);
        assert!(check_linearizable(&h));
    }

    #[test]
    fn insert_remove_insert_chain_is_accepted() {
        // Sequential chain across threads exercising state transitions.
        let h = history(vec![
            rec(0, Op::Insert(4), true, 0, 1),
            rec(1, Op::Remove(4), true, 2, 3),
            rec(0, Op::Insert(4), true, 4, 5),
            rec(1, Op::Find(4), true, 6, 7),
        ]);
        assert!(check_linearizable(&h));
    }
}

#[test]
fn naive_list_would_fail_here() {
    // Sanity check that the checker *can* reject: a hand-built history
    // with two successful inserts of one key has no witness.
    use valois::harness::Recorded;
    let bad = History {
        ops: vec![
            Recorded {
                thread: 0,
                op: Op::Insert(5),
                result: true,
                start: 0,
                end: 3,
            },
            Recorded {
                thread: 1,
                op: Op::Insert(5),
                result: true,
                start: 1,
                end: 4,
            },
        ],
    };
    assert!(!check_linearizable(&bad));
}
