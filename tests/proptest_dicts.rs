//! Property-based sequential equivalence: every §4 dictionary must behave
//! exactly like `BTreeMap` (presence semantics, first-insert-wins) over
//! arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::BTreeMap;

use valois::{BstDict, Dictionary, HashDict, SkipListDict, SortedListDict};

#[derive(Debug, Clone)]
enum DictOp {
    Insert(u8, u16),
    Remove(u8),
    Find(u8),
    Len,
}

fn op_strategy() -> impl Strategy<Value = DictOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| DictOp::Insert(k % 32, v)),
        any::<u8>().prop_map(|k| DictOp::Remove(k % 32)),
        any::<u8>().prop_map(|k| DictOp::Find(k % 32)),
        Just(DictOp::Len),
    ]
}

fn run_against_model<D: Dictionary<u64, u64>>(
    dict: &D,
    ops: &[DictOp],
) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            DictOp::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k, v);
                }
                prop_assert_eq!(dict.insert(k, v), expect, "op {}: insert({})", i, k);
            }
            DictOp::Remove(k) => {
                let k = k as u64;
                let expect = model.remove(&k).is_some();
                prop_assert_eq!(dict.remove(&k), expect, "op {}: remove({})", i, k);
            }
            DictOp::Find(k) => {
                let k = k as u64;
                prop_assert_eq!(dict.find(&k), model.get(&k).copied(), "op {}: find({})", i, k);
            }
            DictOp::Len => {
                prop_assert_eq!(dict.len(), model.len(), "op {}: len", i);
            }
        }
    }
    Ok(())
}

// Each impl gets its own proptest so shrinking pinpoints the structure.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sorted_list_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        run_against_model(&d, &ops)?;
    }

    #[test]
    fn hash_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let d: HashDict<u64, u64> = HashDict::with_buckets(4);
        run_against_model(&d, &ops)?;
    }

    #[test]
    fn skiplist_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        run_against_model(&d, &ops)?;
    }

    #[test]
    fn bst_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let d: BstDict<u64, u64> = BstDict::new();
        run_against_model(&d, &ops)?;
    }

    #[test]
    fn sorted_list_keys_always_sorted(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => { d.insert(k as u64, v as u64); }
                DictOp::Remove(k) => { d.remove(&(k as u64)); }
                _ => {}
            }
            let keys = d.keys();
            prop_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys {:?}", keys);
        }
    }

    #[test]
    fn skiplist_levels_stay_subsets(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut d: SkipListDict<u64, u64> = SkipListDict::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => { d.insert(k as u64, v as u64); }
                DictOp::Remove(k) => { d.remove(&(k as u64)); }
                _ => {}
            }
        }
        prop_assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn sorted_list_range_matches_btreemap(
        ops in prop::collection::vec(op_strategy(), 1..120),
        lo in 0u64..32,
        span in 0u64..32,
    ) {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    model.entry(k).or_insert(v);
                    d.insert(k, v);
                }
                DictOp::Remove(k) => {
                    model.remove(&(k as u64));
                    d.remove(&(k as u64));
                }
                _ => {}
            }
        }
        let hi = lo + span;
        let expected: Vec<(u64, u64)> =
            model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(d.range(&lo, &hi), expected);
    }

    #[test]
    fn skiplist_range_matches_btreemap(
        ops in prop::collection::vec(op_strategy(), 1..120),
        lo in 0u64..32,
        span in 0u64..32,
    ) {
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    model.entry(k).or_insert(v);
                    d.insert(k, v);
                }
                DictOp::Remove(k) => {
                    model.remove(&(k as u64));
                    d.remove(&(k as u64));
                }
                _ => {}
            }
        }
        let hi = lo + span;
        let expected: Vec<(u64, u64)> =
            model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(d.range(&lo, &hi), expected);
    }

    #[test]
    fn bst_inorder_stays_sorted(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut d: BstDict<u64, u64> = BstDict::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => { d.insert(k as u64, v as u64); }
                DictOp::Remove(k) => { d.remove(&(k as u64)); }
                _ => {}
            }
        }
        prop_assert!(d.check_invariants().is_ok());
    }
}
