//! Randomized sequential equivalence: every §4 dictionary must behave
//! exactly like `BTreeMap` (presence semantics, first-insert-wins) over
//! arbitrary operation sequences.
//!
//! Formerly proptest-based; the offline build environment cannot fetch
//! proptest, so the scripts come from the in-repo seeded RNG (fixed seeds
//! keep failures reproducible by case number).

use std::collections::BTreeMap;

use valois::sync::rng::SmallRng;
use valois::{BstDict, Dictionary, HashDict, ResizableHashDict, SkipListDict, SortedListDict};

#[derive(Debug, Clone)]
enum DictOp {
    Insert(u8, u16),
    Remove(u8),
    Find(u8),
    Len,
}

fn random_ops(rng: &mut SmallRng, max_len: usize) -> Vec<DictOp> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| match rng.gen_range(0..4u8) {
            0 => DictOp::Insert(rng.gen_range(0..32u8), rng.next_u64() as u16),
            1 => DictOp::Remove(rng.gen_range(0..32u8)),
            2 => DictOp::Find(rng.gen_range(0..32u8)),
            _ => DictOp::Len,
        })
        .collect()
}

fn run_against_model<D: Dictionary<u64, u64>>(dict: &D, ops: &[DictOp], case: u64) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            DictOp::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k, v);
                }
                assert_eq!(dict.insert(k, v), expect, "case {case} op {i}: insert({k})");
            }
            DictOp::Remove(k) => {
                let k = k as u64;
                let expect = model.remove(&k).is_some();
                assert_eq!(dict.remove(&k), expect, "case {case} op {i}: remove({k})");
            }
            DictOp::Find(k) => {
                let k = k as u64;
                assert_eq!(
                    dict.find(&k),
                    model.get(&k).copied(),
                    "case {case} op {i}: find({k})"
                );
            }
            DictOp::Len => {
                assert_eq!(dict.len(), model.len(), "case {case} op {i}: len");
            }
        }
    }
}

// Each impl gets its own test so a failure pinpoints the structure.

#[test]
fn sorted_list_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0001 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        run_against_model(&d, &ops, case);
    }
}

#[test]
fn hash_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0002 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let d: HashDict<u64, u64> = HashDict::with_buckets(4);
        run_against_model(&d, &ops, case);
    }
}

/// Insert-heavy scripts over a wider key space, for the resizable table:
/// enough distinct live keys that a table starting at 2 buckets is forced
/// through several doublings mid-script.
fn insert_heavy_ops(rng: &mut SmallRng, max_len: usize) -> Vec<DictOp> {
    let len = rng.gen_range(max_len / 2..max_len);
    (0..len)
        .map(|_| match rng.gen_range(0..8u8) {
            0..=4 => DictOp::Insert(rng.gen_range(0..128u8), rng.next_u64() as u16),
            5 => DictOp::Remove(rng.gen_range(0..128u8)),
            6 => DictOp::Find(rng.gen_range(0..128u8)),
            _ => DictOp::Len,
        })
        .collect()
}

#[test]
fn resizable_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_000A ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let d: ResizableHashDict<u64, u64> = ResizableHashDict::new();
        run_against_model(&d, &ops, case);
    }
}

#[test]
fn resizable_matches_btreemap_across_doublings() {
    // The resize-specific oracle: start at 2 buckets and insert far past
    // the doubling threshold, so every script crosses several doublings
    // while run_against_model checks every single operation's result.
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_000B ^ (case * 0x9E37));
        let ops = insert_heavy_ops(&mut rng, 320);
        let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        run_against_model(&d, &ops, case);
        assert!(
            d.doublings() >= 3,
            "case {case}: expected >= 3 doublings, saw {} ({} buckets, {} items)",
            d.doublings(),
            d.bucket_count(),
            d.len()
        );
        d.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        d.audit_refcounts()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

#[test]
fn skiplist_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0003 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        run_against_model(&d, &ops, case);
    }
}

#[test]
fn bst_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0004 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let d: BstDict<u64, u64> = BstDict::new();
        run_against_model(&d, &ops, case);
    }
}

#[test]
fn sorted_list_keys_always_sorted() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0005 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 100);
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => {
                    d.insert(k as u64, v as u64);
                }
                DictOp::Remove(k) => {
                    d.remove(&(k as u64));
                }
                _ => {}
            }
            let keys = d.keys();
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "case {case}: keys {keys:?}"
            );
        }
    }
}

#[test]
fn skiplist_levels_stay_subsets() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0006 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 100);
        let mut d: SkipListDict<u64, u64> = SkipListDict::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => {
                    d.insert(k as u64, v as u64);
                }
                DictOp::Remove(k) => {
                    d.remove(&(k as u64));
                }
                _ => {}
            }
        }
        assert!(d.check_invariants().is_ok(), "case {case}");
    }
}

fn range_case<D: Dictionary<u64, u64>>(
    d: &D,
    rng: &mut SmallRng,
    case: u64,
) -> (Vec<(u64, u64)>, u64, u64) {
    let ops = random_ops(rng, 120);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in &ops {
        match *op {
            DictOp::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                model.entry(k).or_insert(v);
                d.insert(k, v);
            }
            DictOp::Remove(k) => {
                model.remove(&(k as u64));
                d.remove(&(k as u64));
            }
            _ => {}
        }
    }
    let lo = rng.gen_range(0..32u64);
    let hi = lo + rng.gen_range(0..32u64);
    let expected: Vec<(u64, u64)> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
    let _ = case;
    (expected, lo, hi)
}

#[test]
fn sorted_list_range_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0007 ^ (case * 0x9E37));
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        let (expected, lo, hi) = range_case(&d, &mut rng, case);
        assert_eq!(d.range(&lo, &hi), expected, "case {case}: range {lo}..{hi}");
    }
}

#[test]
fn skiplist_range_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0008 ^ (case * 0x9E37));
        let d: SkipListDict<u64, u64> = SkipListDict::new();
        let (expected, lo, hi) = range_case(&d, &mut rng, case);
        assert_eq!(d.range(&lo, &hi), expected, "case {case}: range {lo}..{hi}");
    }
}

#[test]
fn bst_inorder_stays_sorted() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1C7_0009 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 100);
        let mut d: BstDict<u64, u64> = BstDict::new();
        for op in &ops {
            match *op {
                DictOp::Insert(k, v) => {
                    d.insert(k as u64, v as u64);
                }
                DictOp::Remove(k) => {
                    d.remove(&(k as u64));
                }
                _ => {}
            }
        }
        assert!(d.check_invariants().is_ok(), "case {case}");
    }
}
