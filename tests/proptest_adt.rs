//! Randomized model-based tests of the building-block ADTs: the FIFO
//! queue against a `VecDeque` model, the stack against a `Vec` model, and
//! the priority queue against a sorted model.
//!
//! Formerly proptest-based; the offline build environment cannot fetch
//! proptest, so the scripts come from the in-repo seeded RNG (fixed seeds
//! keep failures reproducible by case number).

use std::collections::VecDeque;

use valois::sync::rng::SmallRng;
use valois::{FifoQueue, PriorityQueue, Stack};

#[derive(Debug, Clone)]
enum QueueOp {
    Enqueue(u16),
    Dequeue,
    Len,
}

/// Weighted 2:2:1 enqueue/dequeue/len, matching the old proptest strategy.
fn random_ops(rng: &mut SmallRng, max_len: usize) -> Vec<QueueOp> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| match rng.gen_range(0..5u8) {
            0 | 1 => QueueOp::Enqueue(rng.next_u64() as u16),
            2 | 3 => QueueOp::Dequeue,
            _ => QueueOp::Len,
        })
        .collect()
}

#[test]
fn fifo_queue_matches_vecdeque() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0xADC7_0001 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let q: FifoQueue<u16> = FifoQueue::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    q.enqueue(v).unwrap();
                    model.push_back(v);
                }
                QueueOp::Dequeue => {
                    assert_eq!(q.dequeue(), model.pop_front(), "case {case} op {i}");
                }
                QueueOp::Len => {
                    assert_eq!(q.len(), model.len(), "case {case} op {i}");
                    assert_eq!(q.is_empty(), model.is_empty(), "case {case} op {i}");
                }
            }
        }
        // Drain to the end; order must match exactly.
        while let Some(expected) = model.pop_front() {
            assert_eq!(q.dequeue(), Some(expected), "case {case}: drain");
        }
        assert_eq!(q.dequeue(), None, "case {case}: empty after drain");
    }
}

#[test]
fn stack_matches_vec() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0xADC7_0002 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 200);
        let s: Stack<u16> = Stack::new();
        let mut model: Vec<u16> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    s.push(v).unwrap();
                    model.push(v);
                }
                QueueOp::Dequeue => {
                    assert_eq!(s.pop(), model.pop(), "case {case} op {i}");
                }
                QueueOp::Len => {
                    assert_eq!(s.len(), model.len(), "case {case} op {i}");
                }
            }
        }
    }
}

#[test]
fn priority_queue_always_pops_minimum() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0xADC7_0003 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 150);
        let q: PriorityQueue<u16> = PriorityQueue::new();
        let mut model: Vec<u16> = Vec::new(); // kept sorted
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    q.insert(v).unwrap();
                    let pos = model.partition_point(|x| *x <= v);
                    model.insert(pos, v);
                }
                QueueOp::Dequeue => {
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    assert_eq!(q.pop_min(), expected, "case {case} op {i}");
                }
                QueueOp::Len => {
                    assert_eq!(q.len(), model.len(), "case {case} op {i}");
                    assert_eq!(q.peek_min(), model.first().copied(), "case {case} op {i}");
                }
            }
        }
        assert_eq!(q.to_sorted_vec(), model, "case {case}: final contents");
    }
}
