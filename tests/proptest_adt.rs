//! Property-based tests of the building-block ADTs: the FIFO queue against
//! a `VecDeque` model, the stack against a `Vec` model, and the priority
//! queue against a sorted model.

use proptest::prelude::*;
use std::collections::VecDeque;

use valois::{FifoQueue, PriorityQueue, Stack};

#[derive(Debug, Clone)]
enum QueueOp {
    Enqueue(u16),
    Dequeue,
    Len,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        2 => any::<u16>().prop_map(QueueOp::Enqueue),
        2 => Just(QueueOp::Dequeue),
        1 => Just(QueueOp::Len),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fifo_queue_matches_vecdeque(ops in prop::collection::vec(queue_op(), 1..200)) {
        let q: FifoQueue<u16> = FifoQueue::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    q.enqueue(v).unwrap();
                    model.push_back(v);
                }
                QueueOp::Dequeue => {
                    prop_assert_eq!(q.dequeue(), model.pop_front(), "op {}", i);
                }
                QueueOp::Len => {
                    prop_assert_eq!(q.len(), model.len(), "op {}", i);
                    prop_assert_eq!(q.is_empty(), model.is_empty(), "op {}", i);
                }
            }
        }
        // Drain to the end; order must match exactly.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(expected));
        }
        prop_assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn stack_matches_vec(ops in prop::collection::vec(queue_op(), 1..200)) {
        let s: Stack<u16> = Stack::new();
        let mut model: Vec<u16> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    s.push(v).unwrap();
                    model.push(v);
                }
                QueueOp::Dequeue => {
                    prop_assert_eq!(s.pop(), model.pop(), "op {}", i);
                }
                QueueOp::Len => {
                    prop_assert_eq!(s.len(), model.len(), "op {}", i);
                }
            }
        }
    }

    #[test]
    fn priority_queue_always_pops_minimum(ops in prop::collection::vec(queue_op(), 1..150)) {
        let q: PriorityQueue<u16> = PriorityQueue::new();
        let mut model: Vec<u16> = Vec::new(); // kept sorted
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    q.insert(v).unwrap();
                    let pos = model.partition_point(|x| *x <= v);
                    model.insert(pos, v);
                }
                QueueOp::Dequeue => {
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    prop_assert_eq!(q.pop_min(), expected, "op {}", i);
                }
                QueueOp::Len => {
                    prop_assert_eq!(q.len(), model.len(), "op {}", i);
                    prop_assert_eq!(q.peek_min(), model.first().copied(), "op {}", i);
                }
            }
        }
        prop_assert_eq!(q.to_sorted_vec(), model);
    }
}
