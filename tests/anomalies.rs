//! The §2.2 anomalies, side by side: the naive CAS list corrupts under the
//! Fig. 2 / Fig. 3 interleavings; the auxiliary-node list survives the
//! equivalent logical schedules.

use valois::baseline::naive::NaiveList;
use valois::List;

/// Fig. 2 on the naive list: an insert whose predecessor is concurrently
/// deleted is silently lost.
#[test]
fn naive_list_loses_insert_fig2() {
    let naive: NaiveList<u32> = NaiveList::new();
    for v in [1, 2, 4] {
        naive.insert(v);
    }
    // Process 1 prepares to insert 3 after 2 (reads 2.next = 4)...
    let (b, d) = naive.locate(&3);
    let c = naive.make_node(3);
    // ...process 2 deletes 2...
    assert!(naive.remove(&2));
    // ...process 1 completes: the CAS succeeds on the unreachable node.
    // SAFETY: nodes of a NaiveList are never freed while it lives.
    assert!(unsafe { naive.cas_next(b, d, c) });
    assert!(!naive.contains(&3), "Fig. 2: the insert was lost");
}

/// The same logical schedule against the Valois list: the insert CAS lands
/// on the *auxiliary node*, which the deletion also rewires — so the stale
/// insert fails loudly (retry signal) instead of losing data.
#[test]
fn valois_list_refuses_stale_insert() {
    let list: List<u32> = (0..3).collect(); // [0, 1, 2]
                                            // Process 1 positions a cursor at 1 (like reading B.next).
    let mut inserter = list.cursor();
    assert!(inserter.next());
    assert_eq!(inserter.get(), Some(&1));
    // Process 2 deletes 1 out from under it.
    let mut deleter = list.cursor();
    assert!(deleter.next());
    assert!(deleter.try_delete());
    drop(deleter);
    // Process 1 tries to insert before its (now stale) position: the
    // TryInsert CAS fails — nothing is lost, the caller revalidates.
    let prepared = list.prepare_insert(99).unwrap();
    let prepared = inserter
        .try_insert(prepared)
        .expect_err("stale insert must fail, not vanish");
    inserter.update();
    inserter.try_insert(prepared).expect("valid retry succeeds");
    let items: Vec<u32> = list.iter().collect();
    assert!(items.contains(&99), "nothing lost after retry: {items:?}");
    assert!(!items.contains(&1), "the delete stands: {items:?}");
}

/// Fig. 3 on the naive list: adjacent deletes undo each other.
#[test]
fn naive_list_undoes_adjacent_delete_fig3() {
    let naive: NaiveList<u32> = NaiveList::new();
    for v in [1, 2, 3, 4] {
        naive.insert(v);
    }
    let (a, b) = naive.locate(&2);
    let (_, c) = naive.locate(&3);
    // SAFETY: nodes of a NaiveList are never freed while it lives.
    let d = unsafe { naive.next_of(c) };
    // Delete 2, then the stale delete of 3 "succeeds" on the removed node.
    unsafe {
        assert!(naive.cas_next(a, b, c));
        assert!(naive.cas_next(b, c, d));
    }
    assert!(
        naive.contains(&3),
        "Fig. 3: the second deletion was undone — 3 resurfaced"
    );
}

/// The same schedule against the Valois list: both deletions take effect
/// exactly once, every time.
#[test]
fn valois_list_adjacent_deletes_both_stand() {
    for _ in 0..200 {
        let mut list: List<u32> = (1..=4).collect();
        // Two cursors on adjacent cells 2 and 3, prepared before either
        // deletion (the Fig. 3 setup).
        let mut at2 = list.cursor();
        assert!(at2.next());
        assert_eq!(at2.get(), Some(&2));
        let mut at3 = at2.clone();
        assert!(at3.next());
        assert_eq!(at3.get(), Some(&3));
        // Run the two deletions concurrently.
        std::thread::scope(|s| {
            let h2 = s.spawn(move || {
                let mut c = at2;
                while !c.try_delete() {
                    c.update();
                    if c.get() != Some(&2) {
                        return false;
                    }
                }
                true
            });
            let h3 = s.spawn(move || {
                let mut c = at3;
                while !c.try_delete() {
                    c.update();
                    if c.get() != Some(&3) {
                        return false;
                    }
                }
                true
            });
            assert!(h2.join().unwrap(), "delete of 2 must succeed");
            assert!(h3.join().unwrap(), "delete of 3 must succeed");
        });
        let items: Vec<u32> = list.iter().collect();
        assert_eq!(items, vec![1, 4], "both deletions stand");
        list.check_structure().unwrap();
    }
}
