//! Property-based tests of the raw §3 list: cursor navigation against a
//! vector model, structural invariants after arbitrary edit scripts, and
//! memory conservation.

use proptest::prelude::*;

use valois::core::{ArenaConfig, List};

#[derive(Debug, Clone)]
enum ListOp {
    /// Move the cursor n steps forward (saturating at the end).
    Advance(u8),
    /// Reposition at the first item.
    SeekFirst,
    /// Insert a value before the cursor position.
    Insert(u16),
    /// Delete the item at the cursor position.
    Delete,
}

fn op_strategy() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        (0u8..6).prop_map(ListOp::Advance),
        Just(ListOp::SeekFirst),
        any::<u16>().prop_map(ListOp::Insert),
        Just(ListOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive a cursor with an arbitrary script; a Vec<u16> + index model
    /// must agree at every step.
    #[test]
    fn cursor_matches_vec_model(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let list: List<u16> = List::new();
        let mut cursor = list.cursor();
        let mut model: Vec<u16> = Vec::new();
        let mut pos: usize = 0; // model cursor position (== model.len() at end)

        for (i, op) in ops.iter().enumerate() {
            match *op {
                ListOp::Advance(n) => {
                    for _ in 0..n {
                        let moved = cursor.next();
                        if pos < model.len() {
                            pos += 1;
                            prop_assert!(moved, "op {}: next must move", i);
                        } else {
                            prop_assert!(!moved, "op {}: next at end must fail", i);
                        }
                    }
                }
                ListOp::SeekFirst => {
                    cursor.seek_first();
                    pos = 0;
                }
                ListOp::Insert(v) => {
                    cursor.insert(v).unwrap();
                    model.insert(pos, v);
                    // The paper's insert leaves the cursor invalid; update
                    // repositions it at the inserted cell (same index).
                    cursor.update();
                }
                ListOp::Delete => {
                    let deleted = cursor.try_delete();
                    if pos < model.len() {
                        prop_assert!(deleted, "op {}: delete of live item", i);
                        model.remove(pos);
                        cursor.update();
                    } else {
                        prop_assert!(!deleted, "op {}: delete at end must fail", i);
                    }
                }
            }
            // The visited value must match the model at every step.
            let expected = model.get(pos).copied();
            let actual = cursor.get().copied();
            prop_assert_eq!(actual, expected, "op {}: cursor value", i);
            prop_assert_eq!(cursor.is_at_end(), pos >= model.len(), "op {}: end state", i);
        }
        // Full contents agree.
        let items: Vec<u16> = list.iter().collect();
        prop_assert_eq!(items, model);
    }

    /// After any edit script, the structure is well-formed and all nodes
    /// are accounted for (live structure + free list = capacity).
    #[test]
    fn structure_and_memory_conserved(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut list: List<u16> = List::with_config(ArenaConfig::new().initial_capacity(64));
        {
            let mut cursor = list.cursor();
            for op in &ops {
                match *op {
                    ListOp::Advance(n) => { for _ in 0..n { cursor.next(); } }
                    ListOp::SeekFirst => cursor.seek_first(),
                    ListOp::Insert(v) => { cursor.insert(v).unwrap(); cursor.update(); }
                    ListOp::Delete => { if cursor.try_delete() { cursor.update(); } }
                }
            }
        }
        prop_assert!(list.check_structure().is_ok());
        let items = list.len() as u64;
        let collected = list.quiescent_collect();
        prop_assert_eq!(collected, 0, "sequential scripts never create cycles");
        // dummies(2) + aux(items+1) + cells(items)
        prop_assert_eq!(list.mem_stats().live_nodes(), 3 + 2 * items);
    }

    /// FromIterator/iter round-trip.
    #[test]
    fn collect_roundtrip(values in prop::collection::vec(any::<u16>(), 0..100)) {
        let list: List<u16> = values.clone().into_iter().collect();
        let back: Vec<u16> = list.iter().collect();
        prop_assert_eq!(back, values);
    }
}
