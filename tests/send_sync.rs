//! Compile-time `Send`/`Sync` assertions for every public concurrent type
//! (the API-guidelines C-SEND-SYNC regression test): these traits are
//! implemented manually for the pointer-bearing types, so a refactor that
//! silently loses them must fail this file, not a downstream user.

use valois::baseline::{LockedBstDict, LockedHashDict, LockedListDict, MutexListDict, NaiveList};
use valois::core::{Cursor, PreparedInsert};
use valois::harness::LatencyHistogram;
use valois::mem::{Arena, BuddyAllocator};
use valois::{
    AndersonLock, BstDict, ClhLock, FifoQueue, HashDict, List, PriorityQueue, Receiver, Sender,
    SkipListDict, SortedListDict, Stack, TasLock, TicketLock, TtasLock,
};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn data_structures_are_send_sync() {
    assert_send_sync::<List<u64>>();
    assert_send_sync::<List<String>>();
    assert_send_sync::<FifoQueue<u64>>();
    assert_send_sync::<Stack<u64>>();
    assert_send_sync::<PriorityQueue<u64>>();
    assert_send_sync::<SortedListDict<u64, String>>();
    assert_send_sync::<HashDict<u64, String>>();
    assert_send_sync::<SkipListDict<u64, String>>();
    assert_send_sync::<BstDict<u64, String>>();
    assert_send_sync::<Sender<u64>>();
    assert_send_sync::<Receiver<u64>>();
}

#[test]
fn cursors_and_prepared_inserts_move_across_threads() {
    assert_send::<Cursor<'static, u64>>();
    assert_sync::<Cursor<'static, u64>>();
    assert_send::<PreparedInsert<'static, u64>>();
}

#[test]
fn memory_manager_is_send_sync() {
    // Arena is generic over the node type; the facade list's node type is
    // private, so assert through a structure instead plus the buddy.
    fn arena_send_sync<N: valois::mem::Managed + Send + Sync>() {
        assert_send_sync::<Arena<N>>();
    }
    let _ = arena_send_sync::<DummyNode>;
    assert_send_sync::<BuddyAllocator>();
}

#[test]
fn locks_and_baselines_are_send_sync() {
    assert_send_sync::<TasLock>();
    assert_send_sync::<TtasLock>();
    assert_send_sync::<TicketLock>();
    assert_send_sync::<ClhLock>();
    assert_send_sync::<AndersonLock>();
    assert_send_sync::<LockedListDict<u64, u64>>();
    assert_send_sync::<MutexListDict<u64, u64>>();
    assert_send_sync::<LockedHashDict<u64, u64>>();
    assert_send_sync::<LockedBstDict<u64, u64>>();
    assert_send_sync::<NaiveList<u64>>();
    assert_send_sync::<LatencyHistogram>();
}

/// Minimal Managed impl for the generic Arena assertion.
#[derive(Default)]
struct DummyNode {
    header: valois::mem::NodeHeader,
    next: valois::mem::Link<DummyNode>,
}

impl valois::mem::Managed for DummyNode {
    fn header(&self) -> &valois::mem::NodeHeader {
        &self.header
    }
    fn free_link(&self) -> &valois::mem::Link<Self> {
        &self.next
    }
    fn drain_links(&self) -> valois::mem::ReclaimedLinks<Self> {
        let mut links = valois::mem::ReclaimedLinks::new();
        links.push(self.next.swap(std::ptr::null_mut()));
        links
    }
    fn reset_for_alloc(&self) {
        self.next.write(std::ptr::null_mut());
    }
}
